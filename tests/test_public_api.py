"""The public API surface: explicit ``__all__`` everywhere, and shims warn.

Every module under :mod:`repro` (except the ``__main__`` entry script)
must declare ``__all__``; every listed name must exist; and no public
non-module attribute may leak outside ``__all__``.  Legacy entry points
retired by the registry/observability redesign must keep working but
emit :class:`DeprecationWarning`.
"""

import importlib
import pkgutil
import types

import pytest

import repro

DOCUMENTED_SUBPACKAGES = {
    "topologies", "traffic", "throughput", "sim", "flowsim", "perf",
    "cost", "analysis", "harness", "obs", "registry", "resilience",
    "solvers", "design", "api",
}


def _all_modules():
    mods = [repro]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue
        mods.append(importlib.import_module(info.name))
    return mods


class TestAllDeclarations:
    def test_every_module_declares_all(self):
        missing = [m.__name__ for m in _all_modules()
                   if not hasattr(m, "__all__")]
        assert missing == []

    def test_every_exported_name_exists(self):
        broken = [
            f"{m.__name__}.{name}"
            for m in _all_modules()
            for name in m.__all__
            if not hasattr(m, name)
        ]
        assert broken == []

    def test_no_public_locally_defined_attrs_outside_all(self):
        """Functions/classes a module defines are either private or exported.

        Imported names (typing helpers, sibling re-exports) are not this
        module's surface; only objects whose ``__module__`` is the module
        itself count.
        """
        leaks = []
        for mod in _all_modules():
            exported = set(mod.__all__)
            for name, value in vars(mod).items():
                if name.startswith("_") or name in exported:
                    continue
                if not isinstance(value, (type, types.FunctionType)):
                    continue
                if getattr(value, "__module__", None) != mod.__name__:
                    continue
                leaks.append(f"{mod.__name__}.{name}")
        assert leaks == []


class TestTopLevelSurface:
    def test_import_repro_exposes_documented_surface(self):
        assert (
            DOCUMENTED_SUBPACKAGES | {"__version__", "SPEC_HASH_VERSION"}
            == set(repro.__all__)
        )
        for name in DOCUMENTED_SUBPACKAGES:
            assert isinstance(getattr(repro, name), types.ModuleType)

    def test_version_string(self):
        assert isinstance(repro.__version__, str)


class TestDeprecationShims:
    def test_sim_telemetry_network_report_warns(self):
        from repro.sim import telemetry
        from repro.topologies import fattree
        from repro.sim import PacketSimulation

        sim = PacketSimulation(fattree(4).topology)
        with pytest.warns(DeprecationWarning, match="repro.obs"):
            report = telemetry.network_report(sim.network)
        assert report.links is not None

    def test_make_routing_warns_but_works(self):
        from repro.sim import make_routing
        from repro.topologies import fattree

        topo = fattree(4).topology
        with pytest.warns(DeprecationWarning, match="registry"):
            policy = make_routing("ecmp", topo)
        assert policy is not None

    def test_harness_build_topology_warns(self):
        from repro.harness.execute import build_topology

        with pytest.warns(DeprecationWarning, match="registry"):
            topo = build_topology({"family": "fattree", "k": 4})
        assert topo.num_switches == 20

    def test_cli_build_topology_warns(self):
        import argparse

        from repro.cli import build_topology

        args = argparse.Namespace(k=4, core_fraction=1.0, servers=0)
        with pytest.warns(DeprecationWarning, match="registry"):
            topo, ft = build_topology("fattree", args)
        assert topo.num_switches == 20
        assert ft is not None
