"""Tests for ASCII table rendering."""


from repro.analysis import format_number, format_series, format_table


class TestFormatNumber:
    def test_int_passthrough(self):
        assert format_number(42) == "42"

    def test_float_precision(self):
        assert format_number(0.123456) == "0.1235"

    def test_nan_dash(self):
        assert format_number(float("nan")) == "-"

    def test_inf(self):
        assert format_number(float("inf")) == "inf"

    def test_zero(self):
        assert format_number(0.0) == "0"

    def test_string_passthrough(self):
        assert format_number("hyb") == "hyb"


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["name", "x"], [["a", 1], ["bb", 22]])
        lines = out.splitlines()
        assert len({len(l) for l in lines}) == 1  # all lines same width

    def test_title_included(self):
        out = format_table(["a"], [[1]], title="Table 1")
        assert out.splitlines()[0] == "Table 1"

    def test_all_rows_present(self):
        out = format_table(["v"], [[i] for i in range(5)])
        for i in range(5):
            assert str(i) in out


class TestFormatSeries:
    def test_columns(self):
        out = format_series("x", [1, 2], {"y1": [10, 20], "y2": [30, 40]})
        assert "y1" in out and "y2" in out
        assert "40" in out

    def test_short_series_padded_with_nan(self):
        out = format_series("x", [1, 2], {"y": [10]})
        assert out.splitlines()[-1].strip().endswith("-")
