"""Spec serialization, content hashing, validation, and sweep expansion."""

import json

import pytest

from repro.harness import ExperimentSpec, SpecError, expand_sweep, load_sweep_file


def packet_spec(**over):
    base = dict(
        topology={"family": "fattree", "k": 4},
        workload={"pattern": "permute", "fraction": 0.5, "load": 0.3},
        routing="ecmp",
        engine="packet",
        seed=0,
    )
    base.update(over)
    return ExperimentSpec(**base)


class TestContentHash:
    def test_stable_across_instances(self):
        assert packet_spec().content_hash() == packet_spec().content_hash()

    def test_name_is_cosmetic(self):
        assert (
            packet_spec(name="a").content_hash()
            == packet_spec(name="b").content_hash()
        )
        assert "name" not in packet_spec(name="a").canonical()

    def test_any_semantic_change_alters_hash(self):
        base = packet_spec().content_hash()
        assert packet_spec(seed=1).content_hash() != base
        assert packet_spec(routing="hyb").content_hash() != base
        assert (
            packet_spec(topology={"family": "fattree", "k": 6}).content_hash()
            != base
        )
        assert (
            packet_spec(
                workload={"pattern": "permute", "fraction": 0.6, "load": 0.3}
            ).content_hash()
            != base
        )

    def test_hash_ignores_dict_insertion_order(self):
        a = packet_spec(workload={"pattern": "a2a", "load": 0.3, "fraction": 1.0})
        b = packet_spec(workload={"fraction": 1.0, "load": 0.3, "pattern": "a2a"})
        assert a.content_hash() == b.content_hash()


class TestSerialization:
    def test_round_trip(self):
        spec = packet_spec(name="rt")
        clone = ExperimentSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))
        )
        assert clone == spec
        assert clone.content_hash() == spec.content_hash()

    def test_unknown_field_rejected(self):
        data = packet_spec().to_dict()
        data["typo_field"] = 1
        with pytest.raises(SpecError, match="typo_field"):
            ExperimentSpec.from_dict(data)

    def test_label_falls_back_to_hash_prefix(self):
        spec = packet_spec()
        assert spec.label == spec.content_hash()[:10]
        assert packet_spec(name="fig10").label == "fig10"


class TestValidation:
    def test_unknown_engine(self):
        with pytest.raises(SpecError, match="engine"):
            packet_spec(engine="quantum").validate()

    def test_topology_needs_family(self):
        with pytest.raises(SpecError, match="family"):
            packet_spec(topology={"k": 4}).validate()

    def test_unknown_family(self):
        with pytest.raises(SpecError, match="torus"):
            packet_spec(topology={"family": "torus"}).validate()

    def test_unknown_pattern(self):
        with pytest.raises(SpecError, match="pattern"):
            packet_spec(
                workload={"pattern": "bursty", "load": 0.3}
            ).validate()

    def test_longest_matching_requires_lp(self):
        with pytest.raises(SpecError, match="lp"):
            packet_spec(
                workload={"pattern": "longest_matching", "load": 0.3}
            ).validate()

    def test_load_and_rate_mutually_exclusive(self):
        with pytest.raises(SpecError, match="exactly one"):
            packet_spec(
                workload={"pattern": "a2a", "load": 0.3, "rate": 100.0}
            ).validate()
        with pytest.raises(SpecError, match="exactly one"):
            packet_spec(workload={"pattern": "a2a"}).validate()

    def test_measure_window_ordering(self):
        with pytest.raises(SpecError, match="measure_end"):
            packet_spec(measure_start=0.06, measure_end=0.02).validate()

    def test_unknown_routing(self):
        with pytest.raises(SpecError, match="warp"):
            packet_spec(routing="warp").validate()

    def test_flow_engine_routing_subset(self):
        with pytest.raises(SpecError, match="flow engine"):
            packet_spec(engine="flow", routing="ksp").validate()

    def test_lp_spec_needs_no_load(self):
        spec = ExperimentSpec(
            topology={"family": "jellyfish", "switches": 8, "degree": 3,
                      "servers": 1},
            workload={"pattern": "longest_matching", "fraction": 0.5},
            engine="lp",
        )
        spec.validate()  # must not raise


class TestSweepExpansion:
    DOC = {
        "defaults": {
            "topology": {"family": "fattree", "k": 4},
            "engine": "packet",
            "workload": {"pattern": "permute", "fraction": 0.5, "load": 0.3},
        },
        "grid": {
            "routing": ["ecmp", "hyb"],
            "workload.fraction": [0.2, 1.0],
        },
    }

    def test_grid_is_cartesian_product(self):
        specs = expand_sweep(self.DOC)
        assert len(specs) == 4
        combos = {(s.routing, s.workload["fraction"]) for s in specs}
        assert combos == {("ecmp", 0.2), ("ecmp", 1.0),
                          ("hyb", 0.2), ("hyb", 1.0)}

    def test_grid_points_are_auto_named(self):
        names = {s.name for s in expand_sweep(self.DOC)}
        assert "routing=ecmp,fraction=0.2" in names

    def test_points_deep_merge_over_defaults(self):
        doc = {
            "defaults": self.DOC["defaults"],
            "points": [{"workload": {"fraction": 0.9}}],
        }
        (spec,) = expand_sweep(doc)
        assert spec.workload["fraction"] == 0.9
        assert spec.workload["load"] == 0.3  # inherited
        assert spec.name == "point-0"

    def test_null_override_removes_inherited_key(self):
        doc = {
            "defaults": self.DOC["defaults"],
            "points": [{"workload": {"load": None, "rate": 500.0}}],
        }
        (spec,) = expand_sweep(doc)
        assert "load" not in spec.workload
        assert spec.workload["rate"] == 500.0

    def test_unknown_section_rejected(self):
        with pytest.raises(SpecError, match="matrix"):
            expand_sweep({"defaults": {}, "matrix": {}})

    def test_defaults_only_yields_one_spec(self):
        (spec,) = expand_sweep({"defaults": self.DOC["defaults"]})
        assert spec.routing == "ecmp"

    def test_invalid_grid_point_raises(self):
        doc = {
            "defaults": self.DOC["defaults"],
            "grid": {"routing": ["ecmp", "warp"]},
        }
        with pytest.raises(SpecError, match="warp"):
            expand_sweep(doc)


class TestLoadSweepFile:
    def test_sweep_document(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(TestSweepExpansion.DOC))
        assert len(load_sweep_file(str(path))) == 4

    def test_bare_list(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text(json.dumps([packet_spec(name="a").to_dict(),
                                    packet_spec(name="b", seed=1).to_dict()]))
        specs = load_sweep_file(str(path))
        assert [s.name for s in specs] == ["a", "b"]

    def test_single_spec_object(self, tmp_path):
        path = tmp_path / "one.json"
        path.write_text(json.dumps(packet_spec(name="solo").to_dict()))
        (spec,) = load_sweep_file(str(path))
        assert spec.name == "solo"

    def test_uninterpretable_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('"just a string"')
        with pytest.raises(SpecError):
            load_sweep_file(str(path))
