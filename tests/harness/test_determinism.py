"""Determinism across fresh processes — what makes the cache sound.

An identical (spec, seed) pair must produce byte-identical metrics in
two completely independent interpreter processes; otherwise the
content-addressed cache would serve results that a fresh run could not
reproduce.
"""

import json
import os
import subprocess
import sys

import repro
from repro.harness import ExperimentSpec

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

SCRIPT = """
import json, sys
from repro.harness import ExperimentSpec
from repro.harness.execute import execute_spec

spec = ExperimentSpec.from_dict(json.loads(sys.argv[1]))
record = execute_spec(spec)
print(spec.content_hash())
print(json.dumps(record.metrics, sort_keys=True))
print(json.dumps(record.telemetry, sort_keys=True))
"""


def run_in_fresh_process(spec: ExperimentSpec) -> bytes:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", SCRIPT, json.dumps(spec.to_dict())],
        capture_output=True,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr.decode()
    return proc.stdout


def test_packet_point_is_byte_identical_across_processes():
    spec = ExperimentSpec(
        name="determinism probe",
        topology={"family": "fattree", "k": 4},
        workload={"pattern": "permute", "fraction": 1.0, "load": 0.2,
                  "sizes": "pfabric", "mean_flow_bytes": 200_000},
        routing="hyb",
        engine="packet",
        seed=42,
        measure_start=0.005,
        measure_end=0.02,
    )
    first = run_in_fresh_process(spec)
    second = run_in_fresh_process(spec)
    assert first == second
    assert b"avg_fct_ms" in first
    # The content hash is equally stable (same first line both runs).
    assert first.splitlines()[0] == spec.content_hash().encode()


def test_lp_point_is_byte_identical_across_processes():
    spec = ExperimentSpec(
        topology={"family": "jellyfish", "switches": 10, "degree": 4,
                  "servers": 2, "seed": 1},
        workload={"pattern": "longest_matching", "fraction": 0.5},
        engine="lp",
        seed=0,
    )
    first = run_in_fresh_process(spec)
    assert first == run_in_fresh_process(spec)
    assert b"per_server_throughput" in first
