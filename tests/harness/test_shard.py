"""Shard determinism: partition, merge, and the coordinator contract.

The whole scale-out story rests on two invariants:

* **Assignment is a pure function of content.**  ``shard_of`` depends
  only on the spec's content hash and the shard count — not on list
  order, sibling specs, or the process computing it — so independent
  hosts partition identically with zero coordination, and ``--resume``
  filtering cannot reshuffle points between shards.
* **Merge canonicalizes.**  ``merge_stores`` output is byte-identical
  whether the inputs came from N shards or one unsharded run, because
  volatile per-run fields (wall clock, attempts, cache provenance) are
  pinned and ordering is deterministic.
"""

import json
import subprocess
import sys
import threading

import pytest

from repro.harness import (
    ExperimentSpec,
    ResultsStore,
    Runner,
    ShardCoordinator,
    ShardSpec,
    SpecError,
    merge_records,
    merge_stores,
    partition,
    select_shard,
    shard_of,
    sweep_hash,
)
from repro.harness.records import RunRecord
from repro.harness.shard import canonical_record


def _specs(n=6, switches=8):
    return [
        ExperimentSpec.from_dict({
            "topology": {"family": "jellyfish", "switches": switches,
                         "degree": 3, "servers": 2, "seed": 1},
            "workload": {"pattern": "longest_matching",
                         "solver": "mcf-approx",
                         "fraction": round(0.4 + 0.1 * i, 2)},
            "engine": "lp",
            "seed": 1,
        })
        for i in range(n)
    ]


# ----------------------------------------------------------------------
# Partitioning
# ----------------------------------------------------------------------
def test_partition_covers_each_spec_exactly_once():
    specs = _specs(7)
    shards = partition(specs, 3)
    assert len(shards) == 3
    seen = [s.content_hash() for shard in shards for s in shard]
    assert sorted(seen) == sorted(s.content_hash() for s in specs)


def test_assignment_independent_of_order_and_siblings():
    specs = _specs(6)
    by_hash = {s.content_hash(): shard_of(s, 3) for s in specs}
    # Reversing the list or dropping siblings (--resume) changes nothing.
    for s in reversed(specs):
        assert shard_of(s, 3) == by_hash[s.content_hash()]
    survivors = specs[::2]
    for s in survivors:
        assert shard_of(s, 3) == by_hash[s.content_hash()]


def test_assignment_stable_across_processes():
    specs = _specs(4)
    script = (
        "import json, sys\n"
        "from repro.harness import ExperimentSpec, shard_of\n"
        "docs = json.load(sys.stdin)\n"
        "specs = [ExperimentSpec.from_dict(d) for d in docs]\n"
        "print(json.dumps([shard_of(s, 5) for s in specs]))\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", script],
        input=json.dumps([s.to_dict() for s in specs]),
        capture_output=True, text=True, check=True,
    )
    assert json.loads(proc.stdout) == [shard_of(s, 5) for s in specs]


def test_select_shard_matches_partition():
    specs = _specs(6)
    shards = partition(specs, 3)
    for i in range(3):
        selected = select_shard(specs, ShardSpec(i, 3))
        assert [s.content_hash() for s in selected] == [
            s.content_hash() for s in shards[i]
        ]


def test_sweep_hash_is_order_independent():
    specs = _specs(4)
    assert sweep_hash(specs) == sweep_hash(list(reversed(specs)))
    assert sweep_hash(specs) != sweep_hash(specs[:3])


def test_shard_spec_parse():
    shard = ShardSpec.parse("1/3")
    assert (shard.index, shard.count) == (1, 3)
    assert str(shard) == "1/3"
    for bad in ("3/3", "-1/3", "a/b", "1", "1/0", "1/3/5"):
        with pytest.raises(SpecError):
            ShardSpec.parse(bad)


# ----------------------------------------------------------------------
# Merge
# ----------------------------------------------------------------------
def _fake_record(spec, status="ok", wall=1.23, attempts=2, cached=True):
    return RunRecord(
        spec=spec.to_dict(),
        spec_hash=spec.content_hash(),
        status=status,
        metrics={"per_server_throughput": 0.5} if status == "ok" else {},
        wall_clock_s=wall,
        attempts=attempts,
        error=None if status == "ok" else "boom",
        cached=cached,
    )


def test_canonical_record_pins_volatile_fields():
    spec = _specs(1)[0]
    canon = canonical_record(_fake_record(spec))
    assert canon.wall_clock_s == 0.0
    assert canon.attempts == 1
    assert canon.cached is False
    # Everything meaningful survives.
    assert canon.metrics == {"per_server_throughput": 0.5}
    assert canon.spec_hash == spec.content_hash()


def test_merge_records_dedups_and_prefers_ok():
    spec_a, spec_b = _specs(2)
    failed = _fake_record(spec_a, status="failed")
    good = _fake_record(spec_a, status="ok")
    other = _fake_record(spec_b, status="ok")
    # ok beats failed regardless of arrival order.
    merged = merge_records([failed, other, good], specs=[spec_a, spec_b])
    assert [r.spec_hash for r in merged] == [
        spec_a.content_hash(), spec_b.content_hash(),
    ]
    assert merged[0].ok
    # Without a spec list the order falls back to sorted hashes.
    unordered = merge_records([good, other])
    assert [r.spec_hash for r in unordered] == sorted(
        [spec_a.content_hash(), spec_b.content_hash()]
    )


def test_merge_stores_idempotent(tmp_path):
    specs = _specs(3)
    store_path = tmp_path / "in.jsonl"
    store = ResultsStore(str(store_path))
    for s in specs:
        store.append(_fake_record(s))
    once = tmp_path / "once.jsonl"
    twice = tmp_path / "twice.jsonl"
    result = merge_stores([str(store_path)], str(once), specs=specs)
    assert result.records == 3
    merge_stores([str(once)], str(twice), specs=specs)
    assert once.read_bytes() == twice.read_bytes()


def test_merge_stores_missing_input(tmp_path):
    with pytest.raises(OSError):
        merge_stores([str(tmp_path / "nope.jsonl")], str(tmp_path / "o"))


# ----------------------------------------------------------------------
# End-to-end: sharded == unsharded, byte for byte
# ----------------------------------------------------------------------
def test_three_way_shard_merges_byte_identical(tmp_path):
    specs = _specs(5)
    shard_paths = []
    for i in range(3):
        path = tmp_path / f"shard{i}.jsonl"
        shard_paths.append(str(path))
        shard_specs = select_shard(specs, ShardSpec(i, 3))
        Runner(
            inline=True, retries=0, store=ResultsStore(str(path))
        ).run(shard_specs)
    full_path = tmp_path / "full.jsonl"
    Runner(
        inline=True, retries=0, store=ResultsStore(str(full_path))
    ).run(specs)

    merged = tmp_path / "merged.jsonl"
    canonical = tmp_path / "canonical.jsonl"
    merge_stores(shard_paths, str(merged), specs=specs)
    merge_stores([str(full_path)], str(canonical), specs=specs)
    assert merged.read_bytes() == canonical.read_bytes()
    assert merged.read_bytes()  # not vacuously identical-empty


def test_coordinator_matches_inline_runner():
    specs = _specs(4)
    sharded = ShardCoordinator(shards=3).run(specs)
    unsharded = Runner(inline=True, retries=0).run(specs)
    assert [r.spec_hash for r in sharded.records] == [
        s.content_hash() for s in specs
    ]
    a = [canonical_record(r).to_json() for r in sharded.records]
    b = [canonical_record(r).to_json() for r in unsharded.records]
    assert a == b


def test_coordinator_progress_aggregates():
    specs = _specs(4)
    snapshots = []
    ShardCoordinator(shards=2, progress=snapshots.append).run(specs)
    assert snapshots
    final = snapshots[-1]
    assert final["done"] == len(specs)
    assert final["shards"] == 2


# ----------------------------------------------------------------------
# Cooperative cancellation
# ----------------------------------------------------------------------
def test_runner_should_stop_halts_between_points():
    specs = _specs(5)
    seen = []

    def stop_after_two():
        return len(seen) >= 2

    runner = Runner(
        inline=True, retries=0,
        progress=lambda p: seen.append(p["done"]),
        should_stop=stop_after_two,
    )
    result = runner.run(specs)
    assert 0 < len(result.records) < len(specs)


def test_coordinator_cancel_stops_all_shards():
    specs = _specs(6)
    event = threading.Event()

    def progress(p):
        if p["done"] >= 1:
            event.set()

    result = ShardCoordinator(
        shards=3, progress=progress, should_stop=event.is_set
    ).run(specs)
    # Cancellation is cooperative: some points ran, not necessarily all.
    assert len(result.records) <= len(specs)
    # Records that did complete are real results in submission order.
    hashes = [s.content_hash() for s in specs]
    assert [r.spec_hash for r in result.records] == [
        h for h in hashes if h in {r.spec_hash for r in result.records}
    ]
