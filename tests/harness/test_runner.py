"""Runner integration: parallel sweeps, caching, and graceful degradation.

This file carries the subsystem's acceptance checks: a multi-point
packet sweep through the worker pool matches the serial baseline
metric-for-metric (and beats it on wall clock when the host actually
has >= 2 cores), an immediate re-run is served >= 90% from cache, and an
injected worker exception becomes a failure record while every other
point completes.
"""

import os

from repro.harness import ExperimentSpec, ResultCache, ResultsStore, Runner

N_POINTS = 8


def packet_point(seed, **over):
    base = dict(
        name=f"ecmp seed={seed}",
        topology={"family": "fattree", "k": 4},
        workload={"pattern": "permute", "fraction": 1.0, "load": 0.2,
                  "sizes": "pfabric", "mean_flow_bytes": 200_000},
        routing="ecmp",
        engine="packet",
        seed=seed,
        measure_start=0.005,
        measure_end=0.02,
    )
    base.update(over)
    return ExperimentSpec(**base)


def bad_point():
    """A spec that validates but whose worker raises (odd fat-tree k)."""
    return packet_point(0, name="bad k=5",
                       topology={"family": "fattree", "k": 5})


class TestSweepAcceptance:
    def test_parallel_matches_serial_and_degrades_gracefully(self, tmp_path):
        good = [packet_point(seed) for seed in range(N_POINTS)]
        specs = good + [bad_point()]

        serial = Runner(jobs=1, retries=0).run(good)
        assert serial.ok

        cache = ResultCache(str(tmp_path / "cache"))
        parallel = Runner(jobs=2, cache=cache, retries=0).run(specs)

        # One record per spec, in submission order.
        assert [r.name for r in parallel.records] == [s.name for s in specs]

        # The injected worker exception is a failure record; every other
        # point still completed (graceful degradation, no crashed sweep).
        failed = parallel.records[-1]
        assert failed.status == "failed"
        assert "TopologyError" in failed.error
        assert all(r.ok for r in parallel.records[:-1])
        assert parallel.counts == {
            "total": N_POINTS + 1, "ok": N_POINTS, "cached": 0, "failed": 1,
        }

        # Parallel execution is a pure scheduling change: metrics are
        # identical to the serial baseline, point for point.
        assert [r.metrics for r in parallel.records[:N_POINTS]] == [
            r.metrics for r in serial.records
        ]

        # On a multi-core host the 2-wide pool beats the serial sweep.
        # (A 1-core container can't overlap CPU-bound sims, so the
        # speedup claim is only checkable where parallelism exists.)
        if (os.cpu_count() or 1) >= 2:
            assert parallel.wall_clock_s < serial.wall_clock_s

        # An immediate re-run of the same specs is served from cache:
        # >= 90% of the successful points, with zero recomputation.
        rerun = Runner(jobs=2, cache=cache, retries=0).run(good)
        assert rerun.counts["cached"] == N_POINTS >= 0.9 * len(good)
        assert rerun.counts["ok"] == 0
        assert [r.metrics for r in rerun.records] == [
            r.metrics for r in serial.records
        ]


class TestFailureHandling:
    def test_retries_are_bounded_and_counted(self):
        result = Runner(jobs=1, retries=2, backoff_base_s=0.01).run(
            [bad_point()]
        )
        (rec,) = result.records
        assert rec.status == "failed"
        assert rec.attempts == 3  # 1 initial + 2 retries
        assert "TopologyError" in rec.error

    def test_timeout_terminates_and_records(self):
        slow = packet_point(0, name="slow", measure_start=0.02,
                            measure_end=3.0)
        result = Runner(jobs=1, timeout_s=0.3, retries=0).run([slow])
        (rec,) = result.records
        assert rec.status == "timeout"
        assert "timed out" in rec.error

    def test_invalid_spec_fails_without_spawning(self):
        invalid = ExperimentSpec(
            topology={"family": "torus"},
            workload={"pattern": "a2a", "load": 0.2},
        )
        result = Runner(jobs=1).run([invalid])
        (rec,) = result.records
        assert rec.status == "failed"
        assert "torus" in rec.error
        assert not result.ok


class TestStoreAndProgress:
    LP = dict(
        topology={"family": "jellyfish", "switches": 8, "degree": 3,
                  "servers": 1, "seed": 0},
        workload={"pattern": "longest_matching", "fraction": 0.5},
        engine="lp",
    )

    def test_store_receives_every_record_in_spec_order(self, tmp_path):
        store = ResultsStore(str(tmp_path / "out.jsonl"))
        specs = [ExperimentSpec(name="lp-point", **self.LP), bad_point()]
        Runner(jobs=1, retries=0, store=store).run(specs)
        loaded = store.load()
        assert [r.name for r in loaded] == ["lp-point", "bad k=5"]
        assert loaded[0].ok and not loaded[1].ok
        assert loaded[0].metrics["per_server_throughput"] > 0

    def test_progress_counts_reach_total(self):
        seen = []
        runner = Runner(jobs=1, retries=0, progress=seen.append)
        runner.run([ExperimentSpec(name="lp-point", **self.LP)])
        assert seen[-1]["done"] == seen[-1]["total"] == 1
        assert seen[-1]["running"] == 0
        assert seen[0]["total"] == 1
