"""Content-addressed cache semantics: keying, atomicity, failure policy."""

import pytest

from repro.harness import ExperimentSpec, ResultCache, RunRecord


def spec(**over):
    base = dict(
        topology={"family": "fattree", "k": 4},
        workload={"pattern": "permute", "fraction": 0.5, "load": 0.3},
    )
    base.update(over)
    return ExperimentSpec(**base)


def ok_record(s):
    return RunRecord(
        spec=s.to_dict(), spec_hash=s.content_hash(),
        metrics={"avg_fct_ms": 1.25},
    )


class TestResultCache:
    def test_miss_returns_none(self, tmp_path):
        assert ResultCache(str(tmp_path)).get(spec()) is None

    def test_put_then_get_round_trips(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        s = spec()
        cache.put(s, ok_record(s))
        hit = cache.get(s)
        assert hit is not None
        assert hit.cached is True
        assert hit.metrics == {"avg_fct_ms": 1.25}
        assert len(cache) == 1

    def test_name_change_still_hits(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        s = spec(name="original")
        cache.put(s, ok_record(s))
        assert cache.get(spec(name="renamed")) is not None

    def test_semantic_change_misses(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        s = spec()
        cache.put(s, ok_record(s))
        assert cache.get(spec(seed=7)) is None

    def test_keyed_on_library_version(self, tmp_path):
        old = ResultCache(str(tmp_path), version="0.0.1")
        new = ResultCache(str(tmp_path), version="0.0.2")
        s = spec()
        old.put(s, ok_record(s))
        assert old.get(s) is not None
        assert new.get(s) is None

    def test_failed_records_never_cached(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        s = spec()
        bad = ok_record(s)
        bad.status = "failed"
        with pytest.raises(ValueError, match="successful"):
            cache.put(s, bad)
        assert len(cache) == 0

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        s = spec()
        cache.put(s, ok_record(s))
        with open(cache.path(s), "w") as f:
            f.write("{truncated")
        assert cache.get(s) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        for seed in range(3):
            s = spec(seed=seed)
            cache.put(s, ok_record(s))
        assert cache.clear() == 3
        assert len(cache) == 0
