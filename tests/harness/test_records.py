"""RunRecord round-trips, the JSONL store, and series reconstitution."""

import math

import pytest

from repro.harness import (
    ResultsStore,
    RunRecord,
    provenance,
    record_value,
    series_from_records,
)


def record(name, fraction, avg, status="ok"):
    return RunRecord(
        spec={"name": name, "workload": {"fraction": fraction}},
        spec_hash="deadbeef" * 8,
        status=status,
        metrics={"avg_fct_ms": avg} if status == "ok" else {},
        telemetry={"total_drops": 3},
        provenance=provenance("packet"),
    )


class TestRunRecord:
    def test_json_round_trip(self):
        rec = record("a", 0.5, 1.5)
        clone = RunRecord.from_json(rec.to_json())
        assert clone == rec

    def test_name_falls_back_to_hash_prefix(self):
        rec = record("", 0.5, 1.5)
        assert rec.name == rec.spec_hash[:10]

    def test_ok_property(self):
        assert record("a", 0.5, 1.0).ok
        assert not record("a", 0.5, 1.0, status="failed").ok

    def test_provenance_fingerprint(self):
        from repro.version import SPEC_HASH_VERSION, __version__

        prov = provenance("lp")
        assert prov["engine"] == "lp"
        assert set(prov) == {
            "library_version", "spec_hash_version", "python_version",
            "platform", "engine",
        }
        assert prov["library_version"] == __version__
        assert prov["spec_hash_version"] == SPEC_HASH_VERSION


class TestResultsStore:
    def test_missing_file_loads_empty(self, tmp_path):
        assert ResultsStore(str(tmp_path / "none.jsonl")).load() == []

    def test_extend_then_load_round_trips(self, tmp_path):
        store = ResultsStore(str(tmp_path / "runs" / "out.jsonl"))
        recs = [record("a", 0.2, 1.0), record("b", 0.4, 2.0)]
        store.extend(recs)
        assert store.load() == recs

    def test_append_accumulates(self, tmp_path):
        store = ResultsStore(str(tmp_path / "out.jsonl"))
        store.append(record("a", 0.2, 1.0))
        store.append(record("b", 0.4, 2.0))
        assert [r.name for r in store.load()] == ["a", "b"]


class TestRecordValue:
    def test_dotted_path(self):
        rec = record("a", 0.5, 1.5)
        assert record_value(rec, "spec.workload.fraction") == 0.5
        assert record_value(rec, "metrics.avg_fct_ms") == 1.5
        assert record_value(rec, "telemetry.total_drops") == 3

    def test_callable(self):
        rec = record("a", 0.5, 1.5)
        assert record_value(rec, lambda r: r.status) == "ok"

    def test_missing_path_raises(self):
        with pytest.raises(KeyError, match="metrics.nope"):
            record_value(record("a", 0.5, 1.5), "metrics.nope")


class TestSeriesFromRecords:
    def test_pivot_for_format_series(self):
        recs = [
            record("sys-A", 0.2, 1.0), record("sys-A", 0.6, 2.0),
            record("sys-B", 0.2, 3.0), record("sys-B", 0.6, 4.0),
        ]
        xs, series = series_from_records(
            recs, x="spec.workload.fraction", y="metrics.avg_fct_ms",
            group=lambda r: r.spec["name"],
        )
        assert xs == [0.2, 0.6]
        assert series == {"sys-A": [1.0, 2.0], "sys-B": [3.0, 4.0]}

    def test_missing_point_becomes_nan(self):
        recs = [record("A", 0.2, 1.0), record("A", 0.6, 2.0),
                record("B", 0.6, 4.0)]
        xs, series = series_from_records(
            recs, x="spec.workload.fraction", y="metrics.avg_fct_ms",
            group=lambda r: r.spec["name"],
        )
        assert math.isnan(series["B"][0]) and series["B"][1] == 4.0

    def test_failed_records_skipped(self):
        recs = [record("A", 0.2, 1.0),
                record("A", 0.6, 0.0, status="failed")]
        xs, series = series_from_records(
            recs, x="spec.workload.fraction", y="metrics.avg_fct_ms",
            group=lambda r: r.spec["name"],
        )
        assert xs == [0.2]
        assert series == {"A": [1.0]}
