"""Runner auto-batching of fixed-topology lp sweeps + fatal-error handling."""

import multiprocessing

from repro.harness import ExperimentSpec, ResultCache, Runner
from repro.harness.execute import execute_lp_batch, execute_spec
from repro.harness.runner import _task_main
from repro.throughput import InfeasibleError, SolverFailure

TOPOLOGY = {
    "family": "jellyfish", "switches": 10, "degree": 4,
    "servers": 2, "seed": 1,
}
FRACTIONS = [1.0, 0.75, 0.5]


def _specs(solver, prefix="p", **extra):
    return [
        ExperimentSpec(
            name=f"{prefix}{i}",
            engine="lp",
            topology=dict(TOPOLOGY),
            workload={"solver": solver, "fraction": f},
            **extra,
        )
        for i, f in enumerate(FRACTIONS)
    ]


class _FakeRes:
    def __init__(self, status, success=False, x=None, message="", nit=5):
        self.status = status
        self.success = success
        self.x = x
        self.message = message
        self.nit = nit


class TestAutoBatching:
    def test_batched_records_match_per_point_exact(self):
        batched = Runner(jobs=1, retries=0).run(_specs("highs-batched"))
        exact = Runner(jobs=1, retries=0).run(_specs("exact", prefix="q"))
        assert batched.ok and exact.ok
        for a, b in zip(batched.records, exact.records):
            assert a.attempts == 1
            assert a.metrics == b.metrics
            assert a.telemetry == b.telemetry

    def test_batch_key_gates_on_backend_and_engine(self):
        assert Runner._batch_key(_specs("highs-batched")[0]) is not None
        assert Runner._batch_key(_specs("exact")[0]) is None
        assert Runner._batch_key(_specs("mcf-approx")[0]) is None
        flow = ExperimentSpec(
            name="f", engine="flow", topology=dict(TOPOLOGY),
            workload={"pattern": "permute", "load": 0.1},
        )
        assert Runner._batch_key(flow) is None

    def test_points_split_by_topology(self):
        specs = _specs("highs-batched")
        other = dict(TOPOLOGY, seed=2)
        specs.append(
            ExperimentSpec(
                name="other", engine="lp", topology=other,
                workload={"solver": "highs-batched", "fraction": 1.0},
            )
        )
        keys = {Runner._batch_key(s) for s in specs}
        assert len(keys) == 2  # two groups, both batchable

    def test_batched_records_are_cached(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        specs = _specs("highs-batched")
        first = Runner(jobs=1, retries=0, cache=cache).run(specs)
        assert first.counts["ok"] == len(specs)
        second = Runner(jobs=1, retries=0, cache=cache).run(specs)
        assert second.counts["cached"] == len(specs)
        for a, b in zip(first.records, second.records):
            assert a.metrics == b.metrics

    def test_degraded_batch_matches_per_point(self):
        failures = {"mode": "links", "fraction": 0.1, "seed": 3}
        batched = Runner(jobs=1, retries=0).run(
            _specs("highs-batched", failures=dict(failures))
        )
        exact = Runner(jobs=1, retries=0).run(
            _specs("exact", prefix="q", failures=dict(failures))
        )
        assert batched.ok and exact.ok
        for a, b in zip(batched.records, exact.records):
            assert a.metrics == b.metrics
            assert a.telemetry == b.telemetry
            assert "connectivity" in a.telemetry


class TestBatchFailureIsolation:
    def test_infeasible_point_becomes_failure_record(self, monkeypatch):
        import repro.throughput.lp as lp

        monkeypatch.setattr(
            lp, "linprog", lambda *a, **k: _FakeRes(2, message="infeasible")
        )
        records = execute_lp_batch(_specs("highs-batched"))
        assert all(r.status == "failed" for r in records)
        assert all(r.error.startswith("InfeasibleError:") for r in records)
        assert all(r.attempts == 1 for r in records)

    def test_batch_matches_execute_spec(self):
        records = execute_lp_batch(_specs("highs-batched"))
        for spec, record in zip(_specs("highs-batched"), records):
            assert record.ok
            assert record.metrics == execute_spec(spec).metrics


class TestFatalErrors:
    def test_solver_failure_not_retried_inline(self, monkeypatch):
        calls = []

        def boom(spec):
            calls.append(spec.name)
            raise InfeasibleError("no flow", formulation="exact")

        # Non-batchable solver keeps these points on the inline path,
        # whose executor is the late-bound repro.harness.execute entry.
        monkeypatch.setattr("repro.harness.execute.execute_spec", boom)
        result = Runner(inline=True, retries=2, backoff_base_s=0.0).run(
            _specs("exact")
        )
        assert all(not r.ok for r in result.records)
        assert all(r.attempts == 1 for r in result.records)
        assert all(r.error.startswith("InfeasibleError:") for r in result.records)
        assert len(calls) == len(FRACTIONS)  # one attempt per point, no retries

    def test_ordinary_errors_still_retry(self, monkeypatch):
        calls = []

        def flaky(spec):
            calls.append(spec.name)
            raise OSError("transient")

        monkeypatch.setattr("repro.harness.execute.execute_spec", flaky)
        result = Runner(inline=True, retries=1, backoff_base_s=0.0).run(
            _specs("exact")[:1]
        )
        assert not result.records[0].ok
        assert result.records[0].attempts == 2
        assert len(calls) == 2

    def test_task_main_wire_status_fatal(self):
        parent, child = multiprocessing.Pipe(duplex=False)
        spec = ExperimentSpec(
            name="bad", engine="lp", topology={"family": "torus"},
            workload={},
        )
        _task_main(child, spec.to_dict())
        status, payload = parent.recv()
        assert status == "fatal"
        assert payload.startswith("SpecError:")

    def test_solver_failure_is_fatal_class(self):
        from repro.harness.runner import _FATAL_ERRORS

        assert issubclass(SolverFailure, _FATAL_ERRORS)
        assert issubclass(InfeasibleError, _FATAL_ERRORS)


class TestBatchFallbackObservability:
    def test_wholesale_batch_failure_is_counted_and_evented(self, monkeypatch):
        """A batch that dies wholesale silently re-runs per point — the
        fallback must leave a counter and a structured event behind so
        sweeps can see the batching speedup evaporated (and why)."""
        from repro import obs

        def boom(specs):
            raise RuntimeError("batch solver exploded")

        monkeypatch.setattr("repro.harness.execute.execute_lp_batch", boom)
        with obs.session() as run:
            result = Runner(inline=True, retries=0).run(_specs("highs-batched"))
            snap = obs.snapshot()
        # Every point still completed — on the per-point path.
        assert result.ok
        assert all(r.attempts == 1 for r in result.records)
        assert snap["harness.batch_fallback"]["value"] == 1
        assert "runner.batched_points" not in snap
        events = [e for e in run.events if e["kind"] == "harness.batch_fallback"]
        assert len(events) == 1
        assert events[0]["solver"] == "highs-batched"
        assert events[0]["points"] == len(FRACTIONS)
        assert events[0]["error"] == "RuntimeError: batch solver exploded"

    def test_healthy_batches_emit_no_fallback(self):
        from repro import obs

        with obs.session() as run:
            result = Runner(jobs=1, retries=0).run(_specs("highs-batched"))
            snap = obs.snapshot()
        assert result.ok
        assert "harness.batch_fallback" not in snap
        assert snap["runner.batched_points"]["value"] == len(FRACTIONS)
        assert not [e for e in run.events if e["kind"] == "harness.batch_fallback"]
