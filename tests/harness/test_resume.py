"""``python -m repro sweep --resume``: restart with only the remaining work.

Resume pre-filters the sweep against the result cache and submits only
the points that have never completed — the restart story for a sweep
killed halfway.  Different from plain caching (which still submits
every point and reports hits): resume reports the skip count up front
and the skipped points never reach the runner.
"""

import json

import pytest

from repro.cli import main
from repro.harness import ResultCache, load_sweep_file
from repro.harness.execute import execute_spec

LP_SWEEP = {
    "defaults": {
        "topology": {"family": "jellyfish", "switches": 8, "degree": 3,
                     "servers": 1, "seed": 0},
        "engine": "lp",
        "workload": {"pattern": "longest_matching"},
    },
    "grid": {"workload.fraction": [0.4, 0.7, 1.0]},
}


@pytest.fixture()
def sweep_file(tmp_path):
    path = tmp_path / "sweep.json"
    path.write_text(json.dumps(LP_SWEEP))
    return path


def _seed_partial_cache(sweep_file, cache_dir, n):
    """Pretend a previous run completed the first ``n`` points."""
    cache = ResultCache(str(cache_dir))
    specs = load_sweep_file(str(sweep_file))
    for spec in specs[:n]:
        cache.put(spec, execute_spec(spec))
    return specs


def test_resume_skips_completed_points(sweep_file, tmp_path, capsys):
    cache_dir = tmp_path / "cache"
    _seed_partial_cache(sweep_file, cache_dir, 2)
    rc = main([
        "sweep", str(sweep_file), "--jobs", "1",
        "--cache-dir", str(cache_dir), "--resume", "--quiet",
    ])
    captured = capsys.readouterr()
    assert rc == 0
    assert "resume skipped 2/3 already-completed points" in captured.err
    # Only the one remaining point was computed.
    assert "1 computed, 0 cached, 0 failed" in captured.out
    assert "(2 skipped by --resume)" in captured.out


def test_resume_on_fully_cached_sweep_is_a_noop(sweep_file, tmp_path, capsys):
    cache_dir = tmp_path / "cache"
    _seed_partial_cache(sweep_file, cache_dir, 3)
    rc = main([
        "sweep", str(sweep_file), "--jobs", "1",
        "--cache-dir", str(cache_dir), "--resume", "--quiet",
    ])
    captured = capsys.readouterr()
    assert rc == 0
    assert "resume skipped 3/3" in captured.err
    assert "already complete" in captured.out


def test_resume_with_cold_cache_runs_everything(sweep_file, tmp_path, capsys):
    rc = main([
        "sweep", str(sweep_file), "--jobs", "1",
        "--cache-dir", str(tmp_path / "cache"), "--resume", "--quiet",
    ])
    captured = capsys.readouterr()
    assert rc == 0
    assert "resume skipped 0/3" in captured.err
    assert "3 computed, 0 cached, 0 failed" in captured.out


def test_resume_conflicts_with_no_cache(sweep_file, capsys):
    rc = main([
        "sweep", str(sweep_file), "--resume", "--no-cache", "--quiet",
    ])
    captured = capsys.readouterr()
    assert rc == 2
    assert "--resume" in captured.err and "--no-cache" in captured.err
