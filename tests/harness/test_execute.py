"""execute_spec: topology building, engines, and load resolution."""

import pytest

from repro.harness import ExperimentSpec, SpecError
from repro.harness.execute import build_topology, execute_spec


class TestBuildTopology:
    def test_fattree(self):
        topo = build_topology({"family": "fattree", "k": 4})
        assert topo.num_servers == 16

    def test_oversubscribed_fattree(self):
        full = build_topology({"family": "fattree", "k": 4})
        halved = build_topology(
            {"family": "fattree", "k": 4, "core_fraction": 0.5}
        )
        assert halved.num_links < full.num_links

    def test_jellyfish(self):
        topo = build_topology({"family": "jellyfish", "switches": 10,
                               "degree": 4, "servers": 2, "seed": 3})
        assert topo.num_switches == 10
        assert topo.num_servers == 20

    def test_xpander(self):
        topo = build_topology({"family": "xpander", "degree": 4, "lift": 5,
                               "servers": 2})
        assert topo.num_switches == 25

    def test_unknown_family(self):
        with pytest.raises(SpecError, match="torus"):
            build_topology({"family": "torus"})

    def test_extra_parameters_rejected(self):
        with pytest.raises(SpecError, match="lift"):
            build_topology({"family": "fattree", "k": 4, "lift": 5})


class TestEngines:
    def test_lp_engine_metrics(self):
        spec = ExperimentSpec(
            topology={"family": "jellyfish", "switches": 8, "degree": 3,
                      "servers": 1, "seed": 0},
            workload={"pattern": "longest_matching", "fraction": 0.5},
            engine="lp",
        )
        rec = execute_spec(spec)
        assert rec.ok
        assert rec.metrics["per_server_throughput"] > 0
        assert rec.metrics["fraction"] == 0.5
        assert rec.telemetry == {}
        assert rec.spec_hash == spec.content_hash()
        assert rec.provenance["engine"] == "lp"

    def test_packet_engine_attaches_telemetry(self):
        spec = ExperimentSpec(
            topology={"family": "fattree", "k": 4},
            workload={"pattern": "permute", "fraction": 1.0, "load": 0.2,
                      "sizes": "pfabric", "mean_flow_bytes": 200_000},
            engine="packet",
            measure_start=0.005,
            measure_end=0.02,
        )
        rec = execute_spec(spec)
        assert rec.ok
        assert rec.metrics["flows"] > 0
        assert rec.metrics["avg_fct_ms"] > 0
        assert rec.telemetry["num_links"] > 0
        assert 0 <= rec.telemetry["max_utilization"] <= 1.0
        assert rec.wall_clock_s > 0

    def test_flow_engine(self):
        spec = ExperimentSpec(
            topology={"family": "fattree", "k": 4},
            workload={"pattern": "permute", "fraction": 1.0, "rate": 2000.0,
                      "sizes": "pfabric", "mean_flow_bytes": 100_000},
            engine="flow",
            measure_start=0.005,
            measure_end=0.02,
        )
        rec = execute_spec(spec)
        assert rec.ok
        assert rec.metrics["flows"] > 0

    def test_short_flow_boundary_applied(self):
        base = dict(
            topology={"family": "fattree", "k": 4},
            workload={"pattern": "permute", "fraction": 1.0, "load": 0.2,
                      "sizes": "pfabric", "mean_flow_bytes": 200_000},
            engine="packet",
            measure_start=0.005,
            measure_end=0.02,
        )
        default = execute_spec(ExperimentSpec(**base))
        custom = execute_spec(
            ExperimentSpec(short_flow_bytes=1_000_000, **base)
        )
        # Same sim, different stats boundary: headline FCT identical,
        # short-flow tail percentile computed over a different flow set.
        assert custom.metrics["avg_fct_ms"] == default.metrics["avg_fct_ms"]
        assert (
            custom.metrics["short_p99_fct_ms"]
            != default.metrics["short_p99_fct_ms"]
        )
