"""Extra coverage: CLI variants, budget round-up, network edge cases."""

import pytest

from repro.cli import main
from repro.sim import NetworkParams, PacketSimulation
from repro.topologies import fattree, xpander, xpander_from_budget
from repro.traffic import FlowSpec


class TestCliVariants:
    def test_simulate_hull_sizes(self, capsys):
        rc = main([
            "simulate", "xpander", "--degree", "4", "--lift", "4",
            "--servers", "2", "--routing", "ecmp", "--pattern", "skew",
            "--sizes", "hull", "--mean-flow-bytes", "20000",
            "--rate", "2000", "--measure-start", "0.005",
            "--measure-end", "0.015",
        ])
        assert rc == 0
        assert "avg_fct_ms" in capsys.readouterr().out

    def test_simulate_ksp_routing(self, capsys):
        rc = main([
            "simulate", "xpander", "--degree", "4", "--lift", "4",
            "--servers", "2", "--routing", "ksp", "--pattern", "a2a",
            "--fraction", "0.5", "--rate", "500",
            "--measure-start", "0.005", "--measure-end", "0.012",
        ])
        assert rc == 0

    def test_throughput_fattree_oversubscribed(self, capsys):
        rc = main([
            "throughput", "fattree", "--k", "4", "--core-fraction", "0.5",
            "--fractions", "1.0",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "core=0.50" in out


class TestBudgetRoundUp:
    def test_server_requirement_always_met(self):
        # The lift rounds up when flooring would undershoot the servers.
        for budget, ports, servers in ((213, 16, 1024), (13, 6, 16), (30, 8, 100)):
            xp = xpander_from_budget(budget, ports, servers)
            assert xp.num_servers >= servers

    def test_paper_213_rounds_to_216(self):
        xp = xpander_from_budget(213, 16, 1024)
        assert xp.num_switches == 216


class TestNetworkEdgeCases:
    def test_unconstrained_links_never_mark(self):
        xp = xpander(3, 4, 2)
        sim = PacketSimulation(
            xp,
            routing="ecmp",
            network_params=NetworkParams(
                link_rate_bps=1e9, server_link_rate_bps=None
            ),
        )
        # Access links must have marking disabled.
        for host in sim.network.hosts.values():
            assert host.uplink.ecn_threshold is None

    def test_capacity_attribute_scales_link_rate(self):
        import networkx as nx
        from repro.topologies import Topology

        g = nx.Graph()
        g.add_edge(0, 1, capacity=4.0)
        topo = Topology("fat-link", g, {0: 1, 1: 1})
        sim = PacketSimulation(
            topo, routing="ecmp",
            network_params=NetworkParams(link_rate_bps=1e9),
        )
        link = sim.network.switches[0].switch_ports[1]
        assert link.rate_bps == pytest.approx(4e9)

    def test_flow_between_same_pod_stays_fast(self):
        ft = fattree(4).topology
        flows = [FlowSpec(0, 0, 1, 50_000, 0.0)]  # same rack
        sim = PacketSimulation(
            ft, routing="hyb",
            network_params=NetworkParams(link_rate_bps=1e9),
        )
        sim.inject(flows)
        stats = sim.run(0.0, 0.01)
        assert stats.num_unfinished == 0
        # Two access-link hops only: close to serialization time.
        assert stats.records[0].fct < 0.002
