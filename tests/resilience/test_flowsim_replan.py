"""Flow-level simulator under mid-run failures: re-plan or strand."""

from repro import obs
from repro.flowsim import run_flow_experiment
from repro.resilience import FailureScenario
from repro.topologies import xpander
from repro.traffic import FlowSpec


def _long_flows(topo, n=8, size=5_000_000):
    tor_of = topo.server_to_tor()
    servers = list(range(topo.num_servers))
    flows = []
    fid = 0
    for i, src in enumerate(servers):
        dst = servers[(i + len(servers) // 2) % len(servers)]
        if tor_of[src] == tor_of[dst]:
            continue
        flows.append(FlowSpec(fid, src, dst, size, 0.0))
        fid += 1
        if fid == n:
            break
    return flows


def test_healthy_run_unchanged_by_failures_kwarg():
    topo = xpander(4, 6, 2)
    flows = _long_flows(topo)
    base = run_flow_experiment(topo, flows, routing="ecmp", seed=0)
    empt = run_flow_experiment(topo, flows, routing="ecmp", seed=0, failures=[])
    assert [r.completion_time for r in base.records] == [
        r.completion_time for r in empt.records
    ]


def test_midrun_link_failure_replans_and_completes():
    topo = xpander(4, 6, 2)
    flows = _long_flows(topo)
    healthy = run_flow_experiment(topo, flows, routing="ecmp", seed=0)
    t_half = min(r.completion_time for r in healthy.records) / 2
    scenario = FailureScenario(mode="links", fraction=0.15, seed=3)
    stats = run_flow_experiment(
        topo, flows, routing="ecmp", seed=0, failures=[(t_half, scenario)]
    )
    done = [r for r in stats.records if r.completion_time is not None]
    # Link loss at 15% leaves this expander connected: every flow is
    # either untouched or re-planned, and all complete.
    assert len(done) == len(flows)
    # Capacity loss cannot make the workload finish faster.
    assert max(r.completion_time for r in done) >= max(
        r.completion_time for r in healthy.records
    )


def test_midrun_switch_failure_strands_cut_off_flows(tmp_path):
    topo = xpander(4, 6, 2)
    flows = _long_flows(topo)
    healthy = run_flow_experiment(topo, flows, routing="ecmp", seed=0)
    t_half = min(r.completion_time for r in healthy.records) / 2
    # Kill 30% of switches mid-run; restrict to the surviving giant
    # component so flows whose endpoints died are stranded.
    scenario = FailureScenario(mode="switches", fraction=0.3, seed=1, lcc=True)
    obs.enable(run_dir=str(tmp_path / "run"))
    try:
        stats = run_flow_experiment(
            topo, flows, routing="ecmp", seed=0, failures=[(t_half, scenario)]
        )
        snap = obs.snapshot()
    finally:
        obs.disable()
    stranded = snap.get("flowsim.stranded", {}).get("value", 0)
    replanned = snap.get("flowsim.replans", {}).get("value", 0)
    done = [r for r in stats.records if r.completion_time is not None]
    assert stranded + replanned > 0
    assert len(done) + int(stranded) == len(flows)


def test_vlb_replans_through_survivors():
    topo = xpander(4, 6, 2)
    flows = _long_flows(topo, n=6)
    scenario = FailureScenario(mode="links", fraction=0.1, seed=2)
    stats = run_flow_experiment(
        topo, flows, routing="vlb", seed=0, failures=[(0.001, scenario)]
    )
    assert all(r.completion_time is not None for r in stats.records)


def test_failure_runs_are_deterministic():
    topo = xpander(4, 6, 2)
    flows = _long_flows(topo)
    scenario = FailureScenario(mode="links", fraction=0.2, seed=5)
    a = run_flow_experiment(
        topo, flows, routing="hyb", seed=3, failures=[(0.002, scenario)]
    )
    b = run_flow_experiment(
        topo, flows, routing="hyb", seed=3, failures=[(0.002, scenario)]
    )
    assert [r.completion_time for r in a.records] == [
        r.completion_time for r in b.records
    ]
