"""The deprecated ``fail_*`` free functions are pinned bit-for-bit
against the scenario machinery that replaced them."""

import networkx as nx
import pytest

from repro.resilience import FailureScenario
from repro.topologies import (
    fail_links,
    fail_switches,
    fattree,
    random_link_failures,
    random_switch_failures,
    xpander,
)


def _same_topology(a, b):
    assert a.name == b.name
    assert nx.utils.graphs_equal(a.graph, b.graph)
    assert a.servers_per_switch == b.servers_per_switch


@pytest.fixture()
def topo():
    return xpander(4, 6, 2)


def test_fail_links_emits_deprecation_and_matches_degrade(topo):
    link = tuple(sorted(next(iter(topo.graph.edges()))))
    with pytest.warns(DeprecationWarning):
        old = fail_links(topo, [link])
    new = topo.degrade(FailureScenario(mode="links", links=[link]))
    _same_topology(old, new)
    assert new.failed_links == (link,)


def test_fail_switches_emits_deprecation_and_matches_degrade(topo):
    victim = topo.switches[3]
    with pytest.warns(DeprecationWarning):
        old = fail_switches(topo, [victim])
    new = topo.degrade(FailureScenario(mode="switches", switches=[victim]))
    _same_topology(old, new)
    assert new.failed_switches == (victim,)


@pytest.mark.parametrize("fraction", [0.05, 0.1, 0.2])
@pytest.mark.parametrize("seed", [0, 3])
def test_random_link_failures_bit_for_bit(topo, fraction, seed):
    with pytest.warns(DeprecationWarning):
        old = random_link_failures(topo, fraction, seed=seed)
    new = topo.degrade(f"links:fraction={fraction},seed={seed}")
    _same_topology(old, new)


@pytest.mark.parametrize("fraction", [0.1, 0.25])
def test_random_switch_failures_bit_for_bit(fraction):
    topo = fattree(4).topology
    with pytest.warns(DeprecationWarning):
        old = random_switch_failures(topo, fraction, seed=7)
    new = topo.degrade(f"switches:fraction={fraction},seed=7")
    _same_topology(old, new)


def test_shim_results_carry_provenance(topo):
    with pytest.warns(DeprecationWarning):
        degraded = random_link_failures(topo, 0.1, seed=1)
    # The shim routes through FailureScenario.apply, so provenance is
    # recorded just like for the new API.
    assert degraded.scenario == FailureScenario(mode="links", fraction=0.1, seed=1)
    assert degraded.base_links == topo.num_links
    assert len(degraded.failed_links) == round(0.1 * topo.num_links)
