"""Routing survives degradation: every family, 0-30% link loss.

The packet simulator must complete a small workload on the largest
surviving component of each topology family without unhandled
exceptions — dead next-hops are pruned from ECMP tables, VLB
decapsulates early when its intermediate is unreachable, and only a
genuinely unreachable destination raises :class:`RouteNotFound`.
"""

import pytest

from repro.sim import NetworkParams, run_packet_experiment
from repro.topologies import (
    fattree,
    jellyfish,
    largest_connected_component,
    longhop,
    slimfly,
    xpander,
)
from repro.traffic import FlowSpec

FAST = NetworkParams(link_rate_bps=1e9)

FAMILIES = {
    "fattree": lambda: fattree(4).topology,
    "jellyfish": lambda: jellyfish(15, 4, 2, seed=0),
    "xpander": lambda: xpander(4, 6, 2),
    "slimfly": lambda: slimfly(5, 2),
    "longhop": lambda: longhop(4, 5, 2),  # 2^4 switches
}

FRACTIONS = [0.0, 0.1, 0.2, 0.3]


def _flows(topo, n=6):
    """A few short cross-rack flows between surviving servers."""
    servers = list(range(topo.num_servers))
    tor_of = topo.server_to_tor()
    flows = []
    fid = 0
    for i, src in enumerate(servers):
        dst = servers[(i + len(servers) // 2) % len(servers)]
        if tor_of[src] == tor_of[dst]:
            continue
        flows.append(FlowSpec(fid, src, dst, 20_000, 0.0005 * fid))
        fid += 1
        if fid == n:
            break
    return flows


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("fraction", FRACTIONS)
@pytest.mark.parametrize("routing", ["ecmp", "vlb"])
def test_packet_routing_completes_under_failures(family, fraction, routing):
    topo = FAMILIES[family]()
    if fraction:
        topo = largest_connected_component(
            topo.degrade(f"links:fraction={fraction},seed=4")
        )
    flows = _flows(topo)
    assert flows, f"{family} lost every cross-rack pair at {fraction}"
    stats = run_packet_experiment(
        topo,
        flows,
        routing=routing,
        measure_start=0.0,
        measure_end=1.0,
        network_params=FAST,
        max_sim_time=2.0,
        seed=1,
    )
    completed = [r for r in stats.records if r.completion_time is not None]
    assert len(completed) == len(flows)


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_switch_failures_with_lcc(family):
    """Switch attrition at 20%: LCC restriction keeps the run viable."""
    topo = FAMILIES[family]()
    degraded = topo.degrade("switches:fraction=0.2,seed=2,lcc=true")
    assert degraded.is_connected()
    flows = _flows(degraded, n=4)
    if not flows:
        pytest.skip("no cross-rack pair survives on this tiny instance")
    stats = run_packet_experiment(
        degraded,
        flows,
        routing="ecmp",
        measure_start=0.0,
        measure_end=1.0,
        network_params=FAST,
        max_sim_time=2.0,
        seed=1,
    )
    assert all(r.completion_time is not None for r in stats.records)
