"""Topology.degrade: the one entry point for failure application."""

import pytest

from repro.resilience import FailureScenario, ScenarioError
from repro.topologies import (
    DegradedTopology,
    TopologyError,
    fattree,
    jellyfish,
    xpander,
)


@pytest.fixture()
def topo():
    return jellyfish(20, 4, 2, seed=0)


def test_degrade_accepts_scenario_string_and_mapping(topo):
    by_obj = topo.degrade(FailureScenario(mode="links", fraction=0.1, seed=2))
    by_str = topo.degrade("links:fraction=0.1,seed=2")
    by_map = topo.degrade({"mode": "links", "fraction": 0.1, "seed": 2})
    assert by_obj.failed_links == by_str.failed_links == by_map.failed_links


def test_degrade_returns_provenance(topo):
    degraded = topo.degrade("links:fraction=0.2,seed=0")
    assert isinstance(degraded, DegradedTopology)
    assert degraded.scenario == FailureScenario(mode="links", fraction=0.2, seed=0)
    assert degraded.base_links == topo.num_links
    assert degraded.base_switches == topo.num_switches
    expected = round(0.2 * topo.num_links)
    assert len(degraded.failed_links) == expected
    assert degraded.num_links == topo.num_links - expected
    assert 0.0 < degraded.links_retained < 1.0
    assert degraded.switches_retained == 1.0


def test_degrade_bad_spec_raises(topo):
    with pytest.raises((ScenarioError, ValueError)):
        topo.degrade("meteor:fraction=0.1")
    with pytest.raises((ScenarioError, TypeError, ValueError)):
        topo.degrade(3.14)


def test_switch_failure_drops_servers(topo):
    victim = topo.switches[0]
    degraded = topo.degrade(FailureScenario(mode="switches", switches=[victim]))
    assert degraded.failed_switches == (victim,)
    assert degraded.num_servers == topo.num_servers - topo.servers_at(victim)
    # Every cable incident to the victim is recorded as failed.
    for u, v in degraded.failed_links:
        assert victim in (u, v)


def test_chained_degradation_preserves_base(topo):
    once = topo.degrade("links:fraction=0.1,seed=0")
    twice = once.degrade("switches:fraction=0.1,seed=1")
    assert twice.base_links == topo.num_links
    assert twice.base_switches == topo.num_switches
    # Earlier failures stay recorded.
    assert set(once.failed_links) <= set(twice.failed_links)


def test_lcc_flag_restricts_to_giant_component():
    ft = fattree(4).topology
    heavy = ft.degrade("switches:fraction=0.4,seed=2,lcc=true")
    assert heavy.is_connected()
    # Base sizes still anchor to the healthy network.
    assert heavy.base_switches == ft.num_switches
    assert heavy.connectivity() <= 1.0


def test_refailing_same_link_is_an_error(topo):
    link = tuple(sorted(next(iter(topo.graph.edges()))))
    degraded = topo.degrade(FailureScenario(mode="links", links=[link]))
    with pytest.raises(TopologyError):
        degraded.degrade(FailureScenario(mode="links", links=[link]))


def test_metanodes_mode_on_xpander():
    xp = xpander(4, 6, 2)
    degraded = xp.degrade("metanodes:count=1,seed=0")
    assert len(degraded.failed_switches) == 6  # one lift group
    assert degraded.num_switches == xp.num_switches - 6


def test_pods_and_aggregation_modes_on_fattree():
    ft = fattree(4).topology
    pod = ft.degrade("pods:count=1,seed=0")
    assert len(pod.failed_switches) == 4
    agg = ft.degrade("aggregation:fraction=0.5,seed=0")
    assert len(agg.failed_switches) == 4  # half of 8 agg switches
    for s in agg.failed_switches:
        assert ft.graph.nodes[s]["layer"] == "agg"


def test_bisection_mode_cuts_capacity(topo):
    degraded = topo.degrade("bisection:fraction=0.5,seed=0")
    assert degraded.num_links < topo.num_links
    assert degraded.failed_switches == ()


def test_fraction_zero_is_identity_copy(topo):
    degraded = topo.degrade("links:fraction=0,seed=0")
    assert degraded.failed_links == ()
    assert degraded.num_links == topo.num_links
    assert degraded.links_retained == 1.0
    assert degraded.connectivity() == 1.0
