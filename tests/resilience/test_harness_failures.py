"""Failure-aware harness specs: normalization, hashing, execution."""

import pytest

from repro.harness import ExperimentSpec, SpecError, execute_spec

XP = {"family": "xpander", "degree": 4, "lift": 6, "servers": 2}


def _lp_spec(**kw):
    return ExperimentSpec(
        topology=dict(XP),
        engine="lp",
        workload={"fraction": 1.0},
        **kw,
    )


def test_failures_default_none_keeps_historical_hash():
    spec = _lp_spec()
    assert "failures" not in spec.canonical()
    # Setting then clearing must round back to the same hash.
    with_failures = _lp_spec(failures="links:fraction=0.1,seed=0")
    assert with_failures.content_hash() != spec.content_hash()


def test_failures_string_and_mapping_hash_identically():
    a = _lp_spec(failures="links:fraction=0.1,seed=3")
    b = _lp_spec(failures={"mode": "links", "fraction": 0.1, "seed": 3})
    a.validate()
    b.validate()
    assert a.failures == b.failures  # normalized to the to_spec() mapping
    assert a.content_hash() == b.content_hash()


def test_bad_failures_spec_is_a_spec_error():
    spec = _lp_spec(failures="meteor:fraction=0.1")
    with pytest.raises(SpecError):
        spec.validate()


def test_execute_spec_records_degradation_telemetry():
    record = execute_spec(_lp_spec(failures="links:fraction=0.1,seed=0"))
    assert record.ok
    t = record.telemetry
    assert t["failed_links"] > 0
    assert t["failed_switches"] == 0
    assert 0 < t["links_retained"] < 1
    assert 0 < t["connectivity"] <= 1
    assert "disconnected_pairs" in record.metrics


def test_execute_spec_healthy_has_no_degradation_telemetry():
    record = execute_spec(_lp_spec())
    assert record.ok
    assert "failed_links" not in record.telemetry


def test_execute_spec_flow_engine_under_failures():
    spec = ExperimentSpec(
        topology=dict(XP),
        engine="flow",
        routing="ecmp",
        workload={
            "pattern": "permute",
            "fraction": 0.5,
            "sizes": "pfabric",
            "mean_flow_bytes": 50_000,
            "rate": 2000.0,
        },
        measure_start=0.0,
        measure_end=0.02,
        failures="links:fraction=0.1,seed=1",
    )
    record = execute_spec(spec)
    assert record.ok
    assert record.telemetry["failed_links"] > 0


def test_failure_specs_cache_distinctly(tmp_path):
    """Different failure seeds are different cache keys."""
    from repro.harness import ResultCache, Runner

    cache = ResultCache(str(tmp_path / "cache"))
    specs = [
        _lp_spec(failures=f"links:fraction=0.1,seed={s}", name=f"s{s}")
        for s in (0, 1)
    ]
    runner = Runner(inline=True, cache=cache)
    first = runner.run(specs)
    assert first.counts["ok"] == 2
    seeds = {r.spec["failures"]["seed"] for r in first.records}
    assert seeds == {0, 1}
    second = Runner(inline=True, cache=cache).run(specs)
    assert all(r.cached for r in second.records)
