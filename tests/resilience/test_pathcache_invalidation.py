"""Degradation drops stale shared path-cache entries."""

from repro.perf import (
    clear_shared_caches,
    invalidate_shared_cache,
    shared_path_cache,
)
from repro.resilience import FailureScenario
from repro.topologies import xpander


def setup_function(_fn):
    clear_shared_caches()


def teardown_module(_mod):
    clear_shared_caches()


def test_invalidate_drops_matching_entry():
    topo = xpander(4, 6, 2)
    cache = shared_path_cache(topo.graph)
    assert shared_path_cache(topo.graph) is cache
    assert invalidate_shared_cache(topo.graph) == 1
    assert shared_path_cache(topo.graph) is not cache
    # Nothing left to invalidate the second time around.
    clear_shared_caches()
    assert invalidate_shared_cache(topo.graph) == 0


def test_apply_invalidates_degraded_graph_entry():
    """A cache keyed on the degraded structure is rebuilt after apply().

    This covers the in-place-mutation hazard: if a stale cache exists
    for a graph structurally equal to the degraded result, applying the
    scenario must drop it so routing tables are rebuilt fresh.
    """
    topo = xpander(4, 6, 2)
    scenario = FailureScenario(mode="links", fraction=0.1, seed=3)
    degraded_first = scenario.apply(topo)
    stale = shared_path_cache(degraded_first.graph)
    # Re-applying the same scenario produces a structurally equal graph
    # and must evict the existing entry.
    degraded_again = scenario.apply(topo)
    assert shared_path_cache(degraded_again.graph) is not stale


def test_degraded_cache_reflects_removed_links():
    topo = xpander(4, 6, 2)
    healthy_cache = shared_path_cache(topo.graph)
    degraded = topo.degrade("links:fraction=0.2,seed=5")
    degraded_cache = shared_path_cache(degraded.graph)
    assert degraded_cache is not healthy_cache
    u, v = degraded.failed_links[0]
    # The dead cable is no longer a one-hop path in the degraded cache.
    assert degraded_cache.distance(u, v) != 1
    # The healthy cache still sees it.
    assert healthy_cache.distance(u, v) == 1
