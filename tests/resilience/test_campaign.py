"""Campaign documents, expansion, and end-to-end reduction."""

import json
import math

import pytest

from repro.harness import Runner
from repro.resilience import (
    Campaign,
    CampaignError,
    load_campaign_file,
    run_campaign,
)

DOC = {
    "name": "unit-campaign",
    "engine": "lp",
    "topologies": {
        "Xpander": {"family": "xpander", "degree": 4, "lift": 6, "servers": 2},
        "Fat-tree": "fattree:k=4",
    },
    "failures": {"mode": "links", "fractions": [0.0, 0.1], "seeds": [0, 1]},
    "workload": {"fraction": 1.0},
}


def test_from_document_round_trip():
    c = Campaign.from_document(DOC)
    assert c.name == "unit-campaign"
    assert c.mode == "links"
    assert c.fractions == [0.0, 0.1]
    # String topology specs normalize to harness mappings.
    assert c.topologies["Fat-tree"] == {"family": "fattree", "k": 4}


def test_document_validation():
    with pytest.raises(CampaignError):
        Campaign.from_document({**DOC, "bogus_section": 1})
    with pytest.raises(CampaignError):
        Campaign.from_document({k: v for k, v in DOC.items() if k != "failures"})
    with pytest.raises(CampaignError):
        Campaign.from_document(
            {**DOC, "failures": {"fractions": [0.1], "surprise": 2}}
        )
    with pytest.raises(CampaignError):
        Campaign.from_document({**DOC, "topologies": {}})
    with pytest.raises(CampaignError):
        Campaign.from_document({**DOC, "engine": "quantum"})
    with pytest.raises(CampaignError):
        Campaign.from_document(
            {**DOC, "failures": {"fractions": [-0.1]}}
        )


def test_expand_grid_shape():
    c = Campaign.from_document(DOC)
    specs, keys = c.expand()
    # 2 topologies x (1 baseline + 2 seeds at f=0.1) = 6 points.
    assert len(specs) == 6
    assert len(keys) == 6
    baselines = [s for s in specs if s.failures is None]
    assert len(baselines) == 2  # one healthy baseline per series
    for spec in specs:
        if spec.failures is not None:
            assert spec.failures["mode"] == "links"
            assert spec.failures["fraction"] == 0.1


def test_expand_rejects_bad_engine_fields():
    doc = {**DOC, "defaults": {"no_such_field": 1}}
    with pytest.raises(CampaignError):
        Campaign.from_document(doc).expand()


def test_resolve_metric_defaults():
    assert Campaign.from_document(DOC).resolve_metric() == (
        "per_server_throughput",
        False,
    )
    flow_doc = {
        **DOC,
        "engine": "flow",
        "workload": {
            "pattern": "permute",
            "fraction": 0.5,
            "sizes": "pfabric",
            "mean_flow_bytes": 50_000,
            "rate": 2000.0,
        },
    }
    assert Campaign.from_document(flow_doc).resolve_metric() == (
        "avg_fct_ms",
        True,
    )
    explicit = {**DOC, "metric": {"name": "max_link_utilization", "invert": True}}
    assert Campaign.from_document(explicit).resolve_metric() == (
        "max_link_utilization",
        True,
    )


def test_run_campaign_end_to_end():
    c = Campaign.from_document(DOC)
    result = run_campaign(c, runner=Runner(inline=True))
    assert result.ok
    assert result.counts["ok"] == 6
    assert set(result.series) == {"Xpander", "Fat-tree"}
    # Baseline retained is exactly 1.0; degraded points are finite.
    for label in result.series:
        assert result.retained(label, 0.0) == pytest.approx(1.0)
        assert not math.isnan(result.retained(label, 0.1))
    payload = result.to_payload()
    assert payload["schema"] == "repro.resilience/1"
    assert payload["fraction_failed"] == [0.0, 0.1]
    json.dumps(payload)  # JSON-ready
    text = result.render()
    assert "unit-campaign" in text
    assert "fraction failed" in text


def test_load_campaign_file(tmp_path):
    path = tmp_path / "c.json"
    path.write_text(json.dumps(DOC))
    c = load_campaign_file(str(path))
    assert c.name == "unit-campaign"
    with pytest.raises(CampaignError):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({**DOC, "failures": {}}))
        load_campaign_file(str(bad))
