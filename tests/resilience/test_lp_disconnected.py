"""LP/MCF engines on disconnected degraded topologies.

Instead of crashing on a stale traffic matrix (demands naming racks
that failures cut off or removed), every engine pre-filters the
disconnected pairs, solves the feasible remainder, and reports
``disconnected_pairs`` on the result.
"""

import pytest

from repro.throughput import (
    approx_concurrent_throughput,
    max_concurrent_throughput,
    path_throughput,
)
from repro.topologies import fattree, xpander
from repro.traffic import TrafficMatrix, permutation_tm

ENGINES = [
    max_concurrent_throughput,
    path_throughput,
    approx_concurrent_throughput,
]


@pytest.fixture()
def healthy():
    return xpander(4, 6, 2)


@pytest.mark.parametrize("engine", ENGINES)
def test_connected_topology_reports_zero_disconnected(healthy, engine):
    tm = permutation_tm(healthy.tors, 2, fraction=0.5, seed=0)
    res = engine(healthy, tm)
    assert res.disconnected_pairs == 0
    assert res.throughput > 0


@pytest.mark.parametrize("engine", ENGINES)
def test_stale_tm_pairs_dropped_not_fatal(engine):
    """Demands naming switches the failure removed must not crash."""
    ft = fattree(4).topology
    tm = permutation_tm(ft.tors, 2, fraction=1.0, seed=0)
    degraded = ft.degrade("switches:fraction=0.4,seed=2,lcc=true")
    res = engine(degraded, tm)
    assert res.disconnected_pairs > 0
    # The surviving demands still get a finite answer.
    assert res.throughput >= 0


@pytest.mark.parametrize("engine", ENGINES)
def test_fragmented_topology_pairs_dropped(healthy, engine):
    """A demand across components is dropped; same-component pairs solve."""
    degraded = healthy.degrade("bisection:fraction=1,seed=0")
    if degraded.is_connected():
        pytest.skip("bisection cut did not fragment this instance")
    tm = permutation_tm(healthy.tors, 2, fraction=1.0, seed=1)
    res = engine(degraded, tm)
    assert res.disconnected_pairs > 0


@pytest.mark.parametrize("engine", ENGINES)
def test_all_pairs_disconnected_yields_zero(engine):
    ft = fattree(4).topology
    degraded = ft.degrade("switches:fraction=0.4,seed=2,lcc=true")
    dead = [t for t in ft.tors if t not in degraded.graph]
    assert len(dead) >= 2
    tm = TrafficMatrix({(dead[0], dead[1]): 1.0})
    res = engine(degraded, tm)
    assert res.throughput == 0.0
    assert res.per_server == 0.0
    assert res.disconnected_pairs == 1
