"""FailureScenario: validation, serialization, and determinism."""

import json
import subprocess
import sys

import pytest

from repro.registry import FAILURES, failure
from repro.resilience import MODES, FailureScenario, ScenarioError
from repro.topologies import fattree, xpander


def test_keyword_only_constructor():
    with pytest.raises(TypeError):
        FailureScenario("links", 0.1)  # noqa: F841 - positional forbidden


def test_unknown_mode_rejected():
    with pytest.raises(ScenarioError):
        FailureScenario(mode="meteor")


def test_exactly_one_selector_required():
    with pytest.raises(ScenarioError):
        FailureScenario(mode="links")
    with pytest.raises(ScenarioError):
        FailureScenario(mode="links", fraction=0.1, count=3)


def test_fraction_bounds():
    with pytest.raises(ScenarioError):
        FailureScenario(mode="links", fraction=1.0)  # half-open for links
    with pytest.raises(ScenarioError):
        FailureScenario(mode="links", fraction=-0.1)
    # Structural modes accept a full wipeout.
    FailureScenario(mode="pods", fraction=1.0)


def test_explicit_elements_need_matching_mode():
    with pytest.raises(ScenarioError):
        FailureScenario(mode="switches", links=[(0, 1)])
    with pytest.raises(ScenarioError):
        FailureScenario(mode="links", switches=[0])


def test_immutable():
    s = FailureScenario(mode="links", fraction=0.1)
    with pytest.raises(AttributeError):
        s.fraction = 0.5
    with pytest.raises(AttributeError):
        del s.mode


def test_spec_round_trip():
    for s in (
        FailureScenario(mode="links", fraction=0.08, seed=3),
        FailureScenario(mode="switches", count=2, lcc=True),
        FailureScenario(mode="links", links=[(5, 2), (0, 1)]),
        FailureScenario(mode="bisection", fraction=0.5, seed=9),
    ):
        spec = s.to_spec()
        json.dumps(spec)  # must be JSON-ready
        assert FailureScenario.from_spec(spec) == s
        assert FailureScenario.from_spec(spec).content_hash() == s.content_hash()


def test_from_spec_accepts_strings_and_instances():
    s = FailureScenario.from_spec("links:fraction=0.08,seed=3")
    assert s == FailureScenario(mode="links", fraction=0.08, seed=3)
    assert FailureScenario.from_spec(s) is s


def test_links_normalized_sorted():
    a = FailureScenario(mode="links", links=[(5, 2), (1, 0)])
    b = FailureScenario(mode="links", links=[(0, 1), (2, 5)])
    assert a == b
    assert a.content_hash() == b.content_hash()


def test_content_hash_distinguishes_seeds():
    a = FailureScenario(mode="links", fraction=0.1, seed=0)
    b = FailureScenario(mode="links", fraction=0.1, seed=1)
    assert a.content_hash() != b.content_hash()


def test_registry_exposes_all_modes():
    available = FAILURES.available()
    for mode in MODES:
        assert mode in available


def test_registry_failure_duck_types():
    s = failure({"mode": "links", "fraction": 0.1, "seed": 2})
    assert isinstance(s, FailureScenario)
    with pytest.raises((ValueError, TypeError)):
        failure(42)


def test_selection_deterministic_in_process():
    topo = xpander(4, 6, 2)
    s = FailureScenario(mode="links", fraction=0.2, seed=5)
    assert s.select(topo) == s.select(topo)
    # Structurally equal topology built anew selects the same elements.
    assert s.select(xpander(4, 6, 2)) == s.select(topo)


_SUBPROCESS_SNIPPET = """
import json, sys
from repro.registry import failure
from repro.topologies import fattree
scenario = failure(json.loads(sys.argv[1]))
links, switches = scenario.select(fattree(4).topology)
print(json.dumps({"links": [list(p) for p in links],
                  "switches": list(switches),
                  "hash": scenario.content_hash()}))
"""


def test_selection_deterministic_cross_process():
    scenario = FailureScenario(mode="links", fraction=0.15, seed=11)
    local_links, local_switches = scenario.select(fattree(4).topology)
    out = subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_SNIPPET, json.dumps(scenario.to_spec())],
        capture_output=True,
        text=True,
        check=True,
    )
    remote = json.loads(out.stdout)
    assert remote["hash"] == scenario.content_hash()
    assert [tuple(p) for p in remote["links"]] == list(local_links)
    assert tuple(remote["switches"]) == local_switches


def test_correlated_modes_need_annotations():
    xp = xpander(4, 6, 2)
    ft = fattree(4).topology
    with pytest.raises(ScenarioError):
        FailureScenario(mode="pods", count=1).select(xp)
    with pytest.raises(ScenarioError):
        FailureScenario(mode="metanodes", count=1).select(ft)


def test_metanode_selection_kills_whole_lift_group():
    xp = xpander(4, 6, 2)  # lift 6: meta-nodes of 6 switches each
    links, switches = FailureScenario(mode="metanodes", count=1, seed=0).select(xp)
    assert links == ()
    metas = {xp.graph.nodes[s]["meta_node"] for s in switches}
    assert len(metas) == 1
    assert len(switches) == 6  # lift switches per meta-node


def test_pod_selection_kills_agg_and_edge():
    ft = fattree(4)
    links, switches = FailureScenario(mode="pods", count=1, seed=0).select(
        ft.topology
    )
    assert links == ()
    layers = {ft.topology.graph.nodes[s]["layer"] for s in switches}
    assert layers == {"agg", "edge"}
    assert len(switches) == 4  # k/2 agg + k/2 edge for k=4


def test_bisection_selects_only_crossing_links():
    topo = xpander(4, 6, 2)
    nodes = sorted(topo.graph.nodes())
    left = set(nodes[: len(nodes) // 2])
    links, switches = FailureScenario(mode="bisection", fraction=0.5, seed=1).select(
        topo
    )
    assert switches == ()
    assert links
    for u, v in links:
        assert (u in left) != (v in left)
