"""Empirical checks of the paper's theory (§2): Observation 1, Lemma 2.2 /
Theorem 2.1 (no super-proportional throughput scaling), and the §4.1 toy
example."""

import pytest

from repro.topologies import (
    fattree,
    jellyfish,
    oversubscribed_fattree,
    restricted_dynamic_throughput,
    unrestricted_dynamic_throughput,
)
from repro.topologies.dynamic import moore_bound_mean_distance
from repro.throughput import max_concurrent_throughput
from repro.traffic import TrafficMatrix, all_to_all_tm, permutation_tm
from repro.throughput.bounds import best_static_throughput_bound


class TestObservation1:
    """An x-capacity fat-tree caps at x throughput for a 2/k-server TM."""

    @pytest.mark.parametrize("x", [0.25, 0.5, 0.75])
    def test_pod_pair_limited_to_core_fraction(self, x):
        k = 4
        ft = oversubscribed_fattree(k, x)
        pod_a = ft.edge_switches_in_pod(0)
        pod_b = ft.edge_switches_in_pod(1)
        tm = TrafficMatrix(
            {(a, b): float(k // 2) for a, b in zip(pod_a, pod_b)}
        )
        res = max_concurrent_throughput(ft.topology, tm)
        assert res.per_server == pytest.approx(x, abs=0.02)

    def test_involves_only_2_over_k_servers(self):
        k = 4
        ft = fattree(k)
        two_pods_servers = 2 * (k // 2) * (k // 2)
        assert two_pods_servers / ft.topology.num_servers == pytest.approx(2 / k)

    def test_full_fattree_unaffected(self):
        k = 4
        ft = fattree(k)
        pod_a = ft.edge_switches_in_pod(0)
        pod_b = ft.edge_switches_in_pod(1)
        tm = TrafficMatrix(
            {(a, b): float(k // 2) for a, b in zip(pod_a, pod_b)}
        )
        res = max_concurrent_throughput(ft.topology, tm)
        assert res.per_server == pytest.approx(1.0)


class TestLemma22:
    """If G supports throughput t on permutations over an x fraction, it
    supports ~xt on full permutations — so throughput cannot scale more
    than proportionally (Theorem 2.1).  Verified empirically: for random
    permutation TMs, t(x) <= t(1) / x within tolerance."""

    @pytest.mark.parametrize("seed", [0, 1])
    def test_no_super_proportional_scaling_jellyfish(self, seed):
        jf = jellyfish(16, 4, 3, seed=seed)
        full = min(
            max_concurrent_throughput(
                jf, permutation_tm(jf.tors, 3, 1.0, seed=s)
            ).throughput
            for s in range(3)
        )
        for x in (0.25, 0.5):
            t_x = max_concurrent_throughput(
                jf, permutation_tm(jf.tors, 3, x, seed=seed)
            ).throughput
            # Lemma 2.2: t(x) * x <= t(1) -- up to the worst-case-TM gap
            # (we sample permutations rather than minimize over them).
            assert t_x * x <= full * 1.3

    def test_scaling_exact_on_symmetric_ring(self):
        import networkx as nx
        from repro.topologies import Topology

        # On a ring, a diametric permutation's throughput scales exactly
        # proportionally with the number of participating pairs.
        n = 8
        g = nx.cycle_graph(n)
        nx.set_edge_attributes(g, 1.0, "capacity")
        topo = Topology("ring", g, {v: 1 for v in g.nodes()})
        # One diametric pair (distance 4, both ring halves available).
        t1 = max_concurrent_throughput(
            topo, TrafficMatrix({(0, 4): 1.0})
        ).throughput
        # All four diametric pairs at once.
        t4 = max_concurrent_throughput(
            topo,
            TrafficMatrix({(i, i + 4): 1.0 for i in range(4)}),
        ).throughput
        assert t4 == pytest.approx(t1 / 4)


class TestToyExample:
    """Paper §4.1: 54 switches, 12 ports (6 servers), 9 active racks."""

    def test_restricted_dynamic_bound_is_80_percent(self):
        assert restricted_dynamic_throughput(9, 6, 6) == pytest.approx(0.8)

    def test_unrestricted_dynamic_achieves_full(self):
        assert unrestricted_dynamic_throughput(6, 6) == 1.0

    def test_equal_cost_jellyfish_beats_restricted_dynamic(self):
        # Jellyfish with 9 network ports per switch (delta = 1.5 cost
        # parity with the 6-port dynamic design) supports all-to-all
        # among 9 random racks at full throughput.
        jf = jellyfish(54, 9, 6, seed=1, strict=True)
        tm = all_to_all_tm(jf.tors, 6, fraction=9 / 54, seed=0)
        res = max_concurrent_throughput(jf, tm)
        assert res.per_server > 0.95
        assert res.per_server > restricted_dynamic_throughput(9, 6, 6)

    def test_moore_bound_toy_numbers(self):
        assert moore_bound_mean_distance(9, 6) == pytest.approx(1.25)
        assert best_static_throughput_bound(9, 6, 6) == pytest.approx(0.8)
