"""Property-based tests (hypothesis) over core data structures and invariants."""

import random

import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.flowsim import max_min_allocation
from repro.sim import Engine, percentile
from repro.throughput import (
    k_shortest_paths,
    max_concurrent_throughput,
    tm_throughput_upper_bound,
    tp_curve,
)
from repro.topologies import Topology, jellyfish, moore_bound_mean_distance, xpander
from repro.traffic import (
    EmpiricalCDF,
    ParetoFlowSizes,
    all_to_all_tm,
    longest_matching_tm,
    permutation_tm,
)

slow_settings = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


# ----------------------------------------------------------------------
# Topology invariants
# ----------------------------------------------------------------------
class TestTopologyProperties:
    @slow_settings
    @given(
        d=st.integers(min_value=2, max_value=6),
        lift=st.integers(min_value=2, max_value=8),
    )
    def test_xpander_regular_and_connected(self, d, lift):
        t = xpander(d, lift, 1)
        assert all(deg == d for _, deg in t.graph.degree())
        assert t.is_connected()

    @slow_settings
    @given(
        n=st.integers(min_value=6, max_value=30),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_jellyfish_port_budget_never_exceeded(self, n, seed):
        r = min(4, n - 1)
        if (n * r) % 2:
            n += 1
        t = jellyfish(n, r, 2, seed=seed)
        for s in t.switches:
            assert t.network_degree(s) <= r

    @slow_settings
    @given(
        n=st.integers(min_value=2, max_value=200),
        d=st.integers(min_value=2, max_value=30),
    )
    def test_moore_bound_at_least_one(self, n, d):
        assert moore_bound_mean_distance(n, d) >= 1.0


# ----------------------------------------------------------------------
# Traffic invariants
# ----------------------------------------------------------------------
class TestTrafficProperties:
    @slow_settings
    @given(
        fraction=st.floats(min_value=0.15, max_value=1.0),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_permutation_tm_always_hose_feasible(self, fraction, seed):
        t = xpander(4, 6, 3)
        tm = permutation_tm(t.tors, 3, fraction=fraction, seed=seed)
        tm.validate_hose(t.servers_per_switch)

    @slow_settings
    @given(
        fraction=st.floats(min_value=0.15, max_value=1.0),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_a2a_tm_always_hose_feasible(self, fraction, seed):
        t = xpander(4, 6, 3)
        tm = all_to_all_tm(t.tors, 3, fraction=fraction, seed=seed)
        tm.validate_hose(t.servers_per_switch)

    @slow_settings
    @given(
        fraction=st.floats(min_value=0.2, max_value=1.0),
        seed=st.integers(min_value=0, max_value=200),
    )
    def test_longest_matching_is_perfect_matching(self, fraction, seed):
        t = jellyfish(14, 4, 2, seed=0)
        tm = longest_matching_tm(t, fraction=fraction, seed=seed)
        outs = [s for s, _ in tm.demands]
        ins = [d for _, d in tm.demands]
        assert len(outs) == len(set(outs))
        assert len(ins) == len(set(ins))

    @slow_settings
    @given(
        points=st.lists(
            st.tuples(
                st.floats(min_value=1, max_value=1e8),
                st.floats(min_value=0.01, max_value=0.99),
            ),
            min_size=1,
            max_size=8,
        ),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_empirical_cdf_samples_within_support(self, points, seed):
        sizes = sorted({round(s) for s, _ in points} | {1.0, 1e9})
        probs = sorted(p for _, p in points)
        cdf_points = (
            [(sizes[0], 0.0)]
            + list(zip(sizes[1:-1], probs[: len(sizes) - 2]))
            + [(sizes[-1], 1.0)]
        )
        d = EmpiricalCDF(cdf_points)
        rng = random.Random(seed)
        for _ in range(50):
            s = d.sample(rng)
            assert 1 <= s <= sizes[-1] + 1

    @slow_settings
    @given(
        shape=st.floats(min_value=1.01, max_value=3.0),
        mean=st.floats(min_value=1e3, max_value=1e7),
    )
    def test_pareto_untruncated_mean_solved_exactly(self, shape, mean):
        d = ParetoFlowSizes(shape=shape, mean_bytes=mean, cap_bytes=None)
        assert d.mean() == pytest.approx(mean, rel=1e-6)


# ----------------------------------------------------------------------
# Throughput invariants
# ----------------------------------------------------------------------
class TestThroughputProperties:
    @slow_settings
    @given(seed=st.integers(min_value=0, max_value=50))
    def test_lp_below_upper_bound_random_graphs(self, seed):
        rng = random.Random(seed)
        n = rng.randrange(6, 14)
        g = nx.gnp_random_graph(n, 0.5, seed=seed)
        if not nx.is_connected(g):
            return
        nx.set_edge_attributes(g, 1.0, "capacity")
        topo = Topology("rand", g, {v: 1 for v in g.nodes()})
        tm = permutation_tm(topo.tors, 1, fraction=1.0, seed=seed)
        if tm.num_flows == 0:
            return
        t = max_concurrent_throughput(topo, tm).throughput
        assert t <= tm_throughput_upper_bound(topo, tm) + 1e-6

    @slow_settings
    @given(
        alpha=st.floats(min_value=0.05, max_value=1.0),
        xs=st.lists(
            st.floats(min_value=0.01, max_value=1.0), min_size=1, max_size=10
        ),
    )
    def test_tp_curve_bounded_and_antitone(self, alpha, xs):
        xs = sorted(xs)
        curve = tp_curve(alpha, xs)
        assert all(0 < v <= 1 for v in curve)
        assert all(a >= b - 1e-12 for a, b in zip(curve, curve[1:]))

    @slow_settings
    @given(
        k=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=50),
    )
    def test_k_shortest_paths_sorted_and_simple(self, k, seed):
        g = nx.gnp_random_graph(10, 0.4, seed=seed)
        if not nx.has_path(g, 0, 9) if 9 in g else True:
            return
        if 0 not in g or 9 not in g or not nx.has_path(g, 0, 9):
            return
        paths = k_shortest_paths(g, 0, 9, k)
        lengths = [len(p) for p in paths]
        assert lengths == sorted(lengths)
        for p in paths:
            assert len(p) == len(set(p))


# ----------------------------------------------------------------------
# Max-min fairness invariants
# ----------------------------------------------------------------------
class TestFairshareProperties:
    @slow_settings
    @given(
        seed=st.integers(min_value=0, max_value=200),
        nflows=st.integers(min_value=1, max_value=12),
    )
    def test_no_link_oversubscribed_and_work_conserving(self, seed, nflows):
        rng = random.Random(seed)
        arcs = [(i, i + 1) for i in range(5)]
        caps = {a: rng.uniform(1, 10) for a in arcs}
        paths = {}
        for f in range(nflows):
            start = rng.randrange(0, 5)
            end = rng.randrange(start + 1, 6)
            paths[f] = arcs[start:end]
        rates = max_min_allocation(paths, caps)
        # Capacity respected on every arc.
        for a in arcs:
            load = sum(rates[f] for f, p in paths.items() if a in p)
            assert load <= caps[a] + 1e-6
        # Every flow is bottlenecked: some arc on its path is saturated.
        for f, p in paths.items():
            saturated = any(
                sum(rates[g] for g, q in paths.items() if a in q)
                >= caps[a] - 1e-6
                for a in p
            )
            assert saturated


# ----------------------------------------------------------------------
# Engine and stats invariants
# ----------------------------------------------------------------------
class TestSimProperties:
    @slow_settings
    @given(delays=st.lists(st.floats(min_value=0, max_value=10), max_size=30))
    def test_engine_processes_in_time_order(self, delays):
        e = Engine()
        fired = []
        for d in delays:
            e.schedule(d, fired.append, d)
        e.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @slow_settings
    @given(
        values=st.lists(
            st.floats(min_value=0, max_value=1e6), min_size=1, max_size=100
        ),
        pct=st.floats(min_value=0, max_value=100),
    )
    def test_percentile_within_range(self, values, pct):
        p = percentile(values, pct)
        assert min(values) <= p <= max(values)
        assert p in values
