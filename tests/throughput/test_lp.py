"""Tests for the max-concurrent-flow LPs."""

import networkx as nx
import pytest

from repro.topologies import Topology, fattree, jellyfish, oversubscribed_fattree
from repro.traffic import TrafficMatrix, permutation_tm
from repro.throughput import max_concurrent_throughput, path_throughput


def line_topology(capacity=1.0):
    g = nx.Graph()
    g.add_edge(0, 1, capacity=capacity)
    g.add_edge(1, 2, capacity=capacity)
    return Topology("line", g, {0: 1, 1: 1, 2: 1})


def ring(n, capacity=1.0):
    g = nx.cycle_graph(n)
    nx.set_edge_attributes(g, capacity, "capacity")
    return Topology(f"ring{n}", g, {v: 1 for v in g.nodes()})


class TestExactLPSmallCases:
    def test_single_demand_single_path(self):
        topo = line_topology()
        res = max_concurrent_throughput(topo, TrafficMatrix({(0, 2): 1.0}))
        assert res.throughput == pytest.approx(1.0)

    def test_demand_above_capacity_scales_down(self):
        topo = line_topology()
        res = max_concurrent_throughput(topo, TrafficMatrix({(0, 2): 4.0}))
        assert res.throughput == pytest.approx(0.25)

    def test_two_paths_on_ring(self):
        # On a 4-ring, 0->2 can split across both directions: capacity 2.
        topo = ring(4)
        res = max_concurrent_throughput(topo, TrafficMatrix({(0, 2): 1.0}))
        assert res.throughput == pytest.approx(2.0)

    def test_contending_demands_share(self):
        topo = line_topology()
        tm = TrafficMatrix({(0, 2): 1.0, (1, 2): 1.0})
        res = max_concurrent_throughput(topo, tm)
        # Link (1,2) carries both demands: each gets half.
        assert res.throughput == pytest.approx(0.5)

    def test_empty_tm(self):
        res = max_concurrent_throughput(line_topology(), TrafficMatrix({}))
        assert res.per_server == 1.0

    def test_link_utilization_reported(self):
        topo = line_topology()
        res = max_concurrent_throughput(topo, TrafficMatrix({(0, 2): 1.0}))
        assert res.link_utilization[(0, 1)] == pytest.approx(1.0)
        assert res.link_utilization[(1, 0)] == pytest.approx(0.0)

    def test_capacity_attribute_respected(self):
        topo = line_topology(capacity=2.0)
        res = max_concurrent_throughput(topo, TrafficMatrix({(0, 2): 1.0}))
        assert res.throughput == pytest.approx(2.0)

    def test_disconnected_demand_zero(self):
        g = nx.Graph()
        g.add_edge(0, 1, capacity=1.0)
        g.add_node(2)
        g.add_edge(2, 3, capacity=1.0)
        topo = Topology("disc", g, {0: 1, 2: 1})
        res = max_concurrent_throughput(topo, TrafficMatrix({(0, 2): 1.0}))
        assert res.throughput == pytest.approx(0.0, abs=1e-9)


class TestFatTreeProperties:
    def test_full_fattree_nonblocking(self):
        ft = fattree(4)
        tm = permutation_tm(ft.topology.tors, 2, fraction=1.0, seed=0)
        res = max_concurrent_throughput(ft.topology, tm)
        assert res.per_server == pytest.approx(1.0)

    def test_observation_1(self):
        """Paper Observation 1: an x-capacity fat-tree is pinned to x
        throughput by a pod-to-pod TM touching only 2/k of the servers."""
        k, x = 4, 0.5
        ov = oversubscribed_fattree(k, x)
        pod_a = ov.edge_switches_in_pod(0)
        pod_b = ov.edge_switches_in_pod(1)
        demands = {
            (a, b): float(k // 2) for a, b in zip(pod_a, pod_b)
        }
        res = max_concurrent_throughput(ov.topology, TrafficMatrix(demands))
        assert res.per_server == pytest.approx(x, abs=0.02)


class TestPathLP:
    def test_matches_exact_on_line(self):
        topo = line_topology()
        tm = TrafficMatrix({(0, 2): 2.0})
        exact = max_concurrent_throughput(topo, tm)
        pathed = path_throughput(topo, tm, k=4)
        assert pathed.throughput == pytest.approx(exact.throughput)

    def test_lower_bounds_exact(self):
        jf = jellyfish(16, 4, 2, seed=0)
        tm = permutation_tm(jf.tors, 2, fraction=1.0, seed=1)
        exact = max_concurrent_throughput(jf, tm)
        pathed = path_throughput(jf, tm, k=4)
        assert pathed.throughput <= exact.throughput + 1e-6

    def test_more_paths_never_worse(self):
        jf = jellyfish(16, 4, 2, seed=0)
        tm = permutation_tm(jf.tors, 2, fraction=1.0, seed=1)
        t2 = path_throughput(jf, tm, k=2).throughput
        t8 = path_throughput(jf, tm, k=8).throughput
        assert t8 >= t2 - 1e-9

    def test_disconnected_returns_zero(self):
        g = nx.Graph()
        g.add_edge(0, 1, capacity=1.0)
        g.add_node(2)
        g.add_edge(2, 3, capacity=1.0)
        topo = Topology("disc", g, {0: 1, 2: 1})
        res = path_throughput(topo, TrafficMatrix({(0, 2): 1.0}), k=2)
        assert res.throughput == 0.0

    def test_empty_tm(self):
        res = path_throughput(line_topology(), TrafficMatrix({}), k=2)
        assert res.per_server == 1.0
