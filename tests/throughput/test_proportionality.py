"""Tests for the throughput-proportionality metric and skew sweeps."""

import pytest

from repro.topologies import jellyfish
from repro.throughput import fattree_flexibility_curve, skew_sweep, tp_curve
from repro.traffic import all_to_all_tm


class TestTpCurve:
    def test_shape(self):
        curve = tp_curve(0.5, [0.25, 0.5, 0.75, 1.0])
        assert curve == pytest.approx([1.0, 1.0, 2 / 3, 0.5])

    def test_clamped_at_line_rate(self):
        assert max(tp_curve(0.9, [0.1, 1.0])) <= 1.0

    def test_monotone_decreasing(self):
        curve = tp_curve(0.4, [i / 10 for i in range(1, 11)])
        assert curve == sorted(curve, reverse=True)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            tp_curve(0.0, [0.5])
        with pytest.raises(ValueError):
            tp_curve(1.5, [0.5])

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            tp_curve(0.5, [0.0])


class TestFatTreeCurve:
    def test_flat_above_beta(self):
        k = 8  # beta = 0.25
        curve = fattree_flexibility_curve(0.5, k, [0.3, 0.6, 1.0])
        assert curve == pytest.approx([0.5, 0.5, 0.5])

    def test_proportional_below_beta(self):
        k = 8
        # Below beta = 0.25, throughput rises as alpha*beta/x.
        got = fattree_flexibility_curve(0.5, k, [0.25, 0.2])
        assert got[0] == pytest.approx(0.5)
        assert got[1] == pytest.approx(0.5 * 0.25 / 0.2)

    def test_hits_line_rate_at_alpha_beta(self):
        k, alpha = 8, 0.5
        x = alpha * 2 / k
        got = fattree_flexibility_curve(alpha, k, [x, x / 2])
        assert got == pytest.approx([1.0, 1.0])

    def test_always_below_tp(self):
        # A fat-tree is never above the TP ideal (Fig 2).
        k, alpha = 8, 0.5
        xs = [i / 20 for i in range(1, 21)]
        ft = fattree_flexibility_curve(alpha, k, xs)
        tp = tp_curve(alpha, xs)
        assert all(f <= t + 1e-12 for f, t in zip(ft, tp))


class TestSkewSweep:
    def test_monotone_trend_on_jellyfish(self):
        jf = jellyfish(16, 5, 4, seed=0)
        result = skew_sweep(jf, [0.25, 0.5, 1.0], seed=0)
        # Throughput should not increase as more servers participate.
        assert result.throughput[0] >= result.throughput[-1] - 0.05

    def test_custom_tm_builder(self):
        jf = jellyfish(12, 4, 3, seed=0)
        result = skew_sweep(
            jf,
            [0.5, 1.0],
            tm_builder=lambda t, f, s: all_to_all_tm(t.tors, 3, fraction=f, seed=s),
        )
        assert len(result.throughput) == 2
        assert all(0 <= v <= 1 for v in result.throughput)

    def test_paths_solver(self):
        jf = jellyfish(12, 4, 3, seed=0)
        result = skew_sweep(jf, [0.5], solver="paths", k_paths=6)
        assert 0 <= result.throughput[0] <= 1

    def test_rows_rendering(self):
        jf = jellyfish(12, 4, 3, seed=0)
        result = skew_sweep(jf, [0.5], solver="paths")
        rows = result.as_rows()
        assert rows[0]["fraction"] == 0.5

    def test_invalid_solver(self):
        jf = jellyfish(12, 4, 3, seed=0)
        with pytest.raises(ValueError):
            skew_sweep(jf, [0.5], solver="bogus")
