"""Tests for the Garg–Könemann FPTAS against the exact LP."""

import networkx as nx
import pytest

from repro.topologies import Topology, jellyfish, xpander
from repro.traffic import TrafficMatrix, longest_matching_tm, permutation_tm
from repro.throughput import approx_concurrent_throughput, max_concurrent_throughput


def line_topology():
    g = nx.Graph()
    g.add_edge(0, 1, capacity=1.0)
    g.add_edge(1, 2, capacity=1.0)
    return Topology("line", g, {0: 1, 1: 1, 2: 1})


class TestFptasAccuracy:
    def test_single_path(self):
        res = approx_concurrent_throughput(
            line_topology(), TrafficMatrix({(0, 2): 1.0}), epsilon=0.05
        )
        assert res.throughput == pytest.approx(1.0, rel=0.15)

    def test_never_exceeds_exact(self):
        jf = jellyfish(16, 4, 2, seed=0)
        tm = permutation_tm(jf.tors, 2, fraction=1.0, seed=0)
        exact = max_concurrent_throughput(jf, tm).throughput
        approx = approx_concurrent_throughput(jf, tm, epsilon=0.05).throughput
        assert approx <= exact + 1e-9

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_within_guarantee(self, seed):
        xp = xpander(4, 4, 2)
        tm = longest_matching_tm(xp, fraction=0.5, seed=seed)
        exact = max_concurrent_throughput(xp, tm).throughput
        approx = approx_concurrent_throughput(xp, tm, epsilon=0.05).throughput
        # Garg-Könemann guarantees (1 - O(eps)); allow generous slack.
        assert approx >= exact * 0.8

    def test_smaller_epsilon_tightens(self):
        jf = jellyfish(16, 4, 2, seed=1)
        tm = permutation_tm(jf.tors, 2, fraction=1.0, seed=2)
        exact = max_concurrent_throughput(jf, tm).throughput
        loose = approx_concurrent_throughput(jf, tm, epsilon=0.3).throughput
        tight = approx_concurrent_throughput(jf, tm, epsilon=0.03).throughput
        assert abs(tight - exact) <= abs(loose - exact) + 0.05 * exact


class TestFptasEdgeCases:
    def test_empty_tm(self):
        res = approx_concurrent_throughput(line_topology(), TrafficMatrix({}))
        assert res.per_server == 1.0

    def test_disconnected_zero(self):
        g = nx.Graph()
        g.add_edge(0, 1, capacity=1.0)
        g.add_node(2)
        g.add_edge(2, 3, capacity=1.0)
        topo = Topology("disc", g, {0: 1, 2: 1})
        res = approx_concurrent_throughput(topo, TrafficMatrix({(0, 2): 1.0}))
        assert res.throughput == 0.0

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            approx_concurrent_throughput(
                line_topology(), TrafficMatrix({(0, 2): 1.0}), epsilon=0.9
            )
