"""Tests for path utilities."""

import networkx as nx
import pytest

from repro.throughput import all_shortest_paths, ecmp_next_hops, k_shortest_paths, path_edges


@pytest.fixture()
def grid():
    return nx.grid_2d_graph(3, 3)


class TestKShortestPaths:
    def test_returns_k(self):
        g = nx.complete_graph(5)
        paths = k_shortest_paths(g, 0, 4, 3)
        assert len(paths) == 3

    def test_sorted_by_length(self):
        g = nx.cycle_graph(5)
        paths = k_shortest_paths(g, 0, 2, 2)
        assert len(paths[0]) <= len(paths[1])
        assert paths[0] == [0, 1, 2]

    def test_paths_are_simple(self):
        g = nx.complete_graph(6)
        for p in k_shortest_paths(g, 0, 5, 10):
            assert len(p) == len(set(p))

    def test_no_path(self):
        g = nx.Graph()
        g.add_edge(0, 1)
        g.add_node(2)
        assert k_shortest_paths(g, 0, 2, 3) == []

    def test_invalid_k(self):
        g = nx.complete_graph(3)
        with pytest.raises(ValueError):
            k_shortest_paths(g, 0, 1, 0)


class TestAllShortestPaths:
    def test_counts_on_four_cycle(self):
        g = nx.cycle_graph(4)
        assert len(all_shortest_paths(g, 0, 2)) == 2

    def test_limit_respected(self):
        g = nx.complete_bipartite_graph(4, 4)
        # 0 and 1 are on the same side: 4 two-hop paths.
        assert len(all_shortest_paths(g, 0, 1, limit=2)) == 2

    def test_no_path(self):
        g = nx.Graph()
        g.add_nodes_from([0, 1])
        assert all_shortest_paths(g, 0, 1) == []


class TestEcmpNextHops:
    def test_distance_decreasing(self):
        g = nx.random_regular_graph(3, 12, seed=0)
        dst = 0
        dist = nx.single_source_shortest_path_length(g, dst)
        table = ecmp_next_hops(g, dst)
        for v, hops in table.items():
            if v == dst:
                assert hops == []
                continue
            for w in hops:
                assert dist[w] == dist[v] - 1

    def test_all_valid_hops_included(self):
        g = nx.cycle_graph(4)
        table = ecmp_next_hops(g, 2)
        assert sorted(table[0]) == [1, 3]  # both directions equal length

    def test_deterministic_order(self):
        g = nx.complete_graph(5)
        assert ecmp_next_hops(g, 0) == ecmp_next_hops(g, 0)


class TestPathEdges:
    def test_basic(self):
        assert path_edges([1, 2, 3]) == [(1, 2), (2, 3)]

    def test_single_node(self):
        assert path_edges([7]) == []
