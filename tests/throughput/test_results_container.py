"""Tests for the ThroughputResult container and solver-consistency
invariants across the three solvers on one shared scenario."""

import pytest

from repro.throughput import (
    ThroughputResult,
    approx_concurrent_throughput,
    max_concurrent_throughput,
    path_throughput,
    tm_throughput_upper_bound,
)
from repro.topologies import xpander
from repro.traffic import longest_matching_tm


@pytest.fixture(scope="module")
def scenario():
    topo = xpander(4, 5, 2)
    tm = longest_matching_tm(topo, fraction=0.6, seed=3)
    return topo, tm


class TestSolverConsistency:
    def test_ordering(self, scenario):
        """paths <= exact <= upper bound; fptas <= exact."""
        topo, tm = scenario
        exact = max_concurrent_throughput(topo, tm).throughput
        pathed = path_throughput(topo, tm, k=6).throughput
        fptas = approx_concurrent_throughput(topo, tm, epsilon=0.08).throughput
        bound = tm_throughput_upper_bound(topo, tm)
        assert pathed <= exact + 1e-6
        assert fptas <= exact + 1e-6
        assert exact <= bound + 1e-6

    def test_all_agree_within_tolerance(self, scenario):
        topo, tm = scenario
        exact = max_concurrent_throughput(topo, tm).throughput
        pathed = path_throughput(topo, tm, k=12).throughput
        fptas = approx_concurrent_throughput(topo, tm, epsilon=0.05).throughput
        assert pathed >= 0.8 * exact
        assert fptas >= 0.8 * exact

    def test_scaling_invariance(self, scenario):
        """Doubling all demands halves the concurrent fraction."""
        topo, tm = scenario
        t1 = max_concurrent_throughput(topo, tm).throughput
        t2 = max_concurrent_throughput(topo, tm.scaled(2.0)).throughput
        assert t2 == pytest.approx(t1 / 2, rel=1e-4)


class TestResultContainer:
    def test_per_server_clamped(self):
        r = ThroughputResult(throughput=3.0, per_server=min(1.0, 3.0))
        assert r.per_server == 1.0

    def test_utilization_optional(self):
        r = ThroughputResult(throughput=0.5, per_server=0.5)
        assert r.link_utilization is None
