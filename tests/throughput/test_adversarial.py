"""Tests for adversarial TM search and the §2 conjecture probes."""

import pytest

from repro.throughput import max_concurrent_throughput
from repro.throughput.adversarial import (
    adversarial_matching_tm,
    conjecture_2_4_evidence,
    random_hose_tm,
)
from repro.traffic import longest_matching_tm
from repro.topologies import jellyfish, xpander


@pytest.fixture(scope="module")
def jf():
    return jellyfish(14, 4, 3, seed=0)


class TestRandomHoseTm:
    def test_hose_feasible(self, jf):
        tm = random_hose_tm(jf.tors, 3, seed=1)
        tm.validate_hose({t: 3 for t in jf.tors})

    def test_saturates_hose(self, jf):
        tm = random_hose_tm(jf.tors, 3, seed=1)
        for t in jf.tors:
            assert tm.egress(t) == pytest.approx(3.0, rel=1e-3)
            assert tm.ingress(t) == pytest.approx(3.0, rel=1e-3)

    def test_dense(self, jf):
        tm = random_hose_tm(jf.tors, 3, seed=2)
        n = len(jf.tors)
        assert tm.num_flows > 0.8 * n * (n - 1)

    def test_deterministic(self, jf):
        a = random_hose_tm(jf.tors, 3, seed=3)
        b = random_hose_tm(jf.tors, 3, seed=3)
        assert a.demands == b.demands

    def test_too_few_tors_rejected(self):
        with pytest.raises(ValueError):
            random_hose_tm([1], 2)


class TestAdversarialMatching:
    def test_never_worse_than_longest_matching(self, jf):
        base_tm = longest_matching_tm(jf, fraction=1.0, seed=0)
        base_t = max_concurrent_throughput(jf, base_tm).throughput
        _, adv_t = adversarial_matching_tm(jf, fraction=1.0, iterations=3, seed=0)
        assert adv_t <= base_t + 1e-9

    def test_returns_valid_tm(self, jf):
        tm, t = adversarial_matching_tm(jf, fraction=0.5, iterations=2, seed=1)
        tm.validate_hose({s: 3 for s in jf.tors})
        assert t > 0

    def test_single_iteration_equals_longest_matching(self, jf):
        tm, t = adversarial_matching_tm(jf, fraction=1.0, iterations=1, seed=0)
        base = max_concurrent_throughput(
            jf, longest_matching_tm(jf, fraction=1.0, seed=0)
        ).throughput
        assert t == pytest.approx(base)

    def test_invalid_iterations(self, jf):
        with pytest.raises(ValueError):
            adversarial_matching_tm(jf, iterations=0)


class TestConjecture24:
    def test_evidence_on_expander(self):
        xp = xpander(4, 4, 2)
        ev = conjecture_2_4_evidence(xp, servers_per_tor=2, trials=3, seed=0)
        assert len(ev.permutation_samples) == 3
        assert len(ev.hose_samples) == 3
        # The paper conjectures permutations are worst-case; random
        # sampling should at least not refute it on small expanders.
        assert ev.consistent

    def test_worsts_are_minima(self):
        xp = xpander(4, 4, 2)
        ev = conjecture_2_4_evidence(xp, servers_per_tor=2, trials=2, seed=1)
        assert ev.worst_permutation == min(ev.permutation_samples)
        assert ev.worst_hose == min(ev.hose_samples)
