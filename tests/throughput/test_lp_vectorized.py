"""Equivalence of the vectorized LP assembly with the reference loops."""

import random

import networkx as nx
import numpy as np
import pytest

from repro.perf import PathCache, clear_shared_caches
from repro.throughput import max_concurrent_throughput, path_throughput
from repro.throughput.arcs import ArcTable
from repro.throughput.lp import (
    _assemble_exact_reference,
    _assemble_exact_vectorized,
    _demands_by_destination,
)
from repro.topologies import Topology, jellyfish
from repro.traffic import TrafficMatrix, permutation_tm


def random_topology(rng, n=None):
    n = n or rng.randint(5, 14)
    while True:
        g = nx.gnp_random_graph(n, 0.45, seed=rng.randint(0, 10**6))
        if nx.is_connected(g):
            break
    for u, v in g.edges():
        g.edges[u, v]["capacity"] = rng.choice([0.5, 1.0, 2.0, 4.0])
    return Topology(f"rand{n}", g, {v: rng.randint(1, 3) for v in g.nodes()})


def random_tm(rng, topo, flows=None):
    nodes = list(topo.graph.nodes())
    flows = flows or rng.randint(1, 8)
    demands = {}
    for _ in range(flows):
        s, d = rng.sample(nodes, 2)
        demands[(s, d)] = rng.choice([0.5, 1.0, 2.0, 3.0])
    return TrafficMatrix(demands)


class TestExactAssemblyEquivalence:
    @pytest.mark.parametrize("seed", range(12))
    def test_matrices_identical(self, seed):
        rng = random.Random(seed)
        topo = random_topology(rng)
        tm = random_tm(rng, topo)
        table = ArcTable.from_topology(topo)
        dests, demand_to = _demands_by_destination(tm)

        a_eq_r, b_eq_r, a_ub_r = _assemble_exact_reference(table, dests, demand_to)
        a_eq_v, b_eq_v, a_ub_v = _assemble_exact_vectorized(table, dests, demand_to)

        # Canonical CSR comparison: structure AND values must agree
        # exactly, so the solver sees byte-identical problems.
        assert (a_eq_r != a_eq_v).nnz == 0
        assert (a_ub_r != a_ub_v).nnz == 0
        np.testing.assert_array_equal(b_eq_r, b_eq_v)

    @pytest.mark.parametrize("seed", range(8))
    def test_optima_match(self, seed):
        rng = random.Random(100 + seed)
        topo = random_topology(rng)
        tm = random_tm(rng, topo)
        res = max_concurrent_throughput(topo, tm)
        assert res.throughput >= 0.0

    def test_jellyfish_permutation(self):
        topo = jellyfish(
            num_switches=10, network_ports=4, servers_per_switch=2, seed=1
        )
        tm = permutation_tm(topo.switches, servers_per_tor=2, seed=0)
        res = max_concurrent_throughput(topo, tm)
        assert 0.0 < res.throughput


class TestPathThroughputCache:
    def test_shared_cache_is_used_and_result_unchanged(self):
        clear_shared_caches()
        topo = jellyfish(
            num_switches=10, network_ports=4, servers_per_switch=2, seed=2
        )
        tm = permutation_tm(topo.switches, servers_per_tor=2, seed=1)
        base = path_throughput(topo, tm, k=4)

        cache = PathCache(topo.graph)
        again = path_throughput(topo, tm, k=4, path_cache=cache)
        assert again.throughput == pytest.approx(base.throughput, abs=1e-12)
        assert cache._ksp  # the explicit cache actually served the paths

        # Second call with warmed cache: identical result.
        warm = path_throughput(topo, tm, k=4, path_cache=cache)
        assert warm.throughput == pytest.approx(base.throughput, abs=1e-12)

    def test_path_vs_exact_bound(self):
        # Path-restricted LP can never beat the exact LP.
        topo = jellyfish(
            num_switches=8, network_ports=3, servers_per_switch=2, seed=3
        )
        tm = permutation_tm(topo.switches, servers_per_tor=2, seed=2)
        exact = max_concurrent_throughput(topo, tm)
        restricted = path_throughput(topo, tm, k=3)
        assert restricted.throughput <= exact.throughput + 1e-9
