"""Tests for throughput upper bounds."""

import networkx as nx
import pytest

from repro.topologies import Topology, jellyfish
from repro.traffic import TrafficMatrix, longest_matching_tm
from repro.throughput import (
    best_static_throughput_bound,
    max_concurrent_throughput,
    path_throughput,
    tm_throughput_upper_bound,
)


class TestTmUpperBound:
    def test_bounds_exact_lp(self):
        jf = jellyfish(16, 4, 2, seed=0)
        tm = longest_matching_tm(jf, fraction=1.0, seed=0)
        exact = max_concurrent_throughput(jf, tm).throughput
        bound = tm_throughput_upper_bound(jf, tm)
        assert exact <= bound + 1e-9

    def test_tight_on_line(self):
        g = nx.Graph()
        g.add_edge(0, 1, capacity=1.0)
        topo = Topology("edge", g, {0: 1, 1: 1})
        tm = TrafficMatrix({(0, 1): 1.0, (1, 0): 1.0})
        # Bound: 2 capacity / (2 flows * distance 1) = 1; LP agrees.
        assert tm_throughput_upper_bound(topo, tm) == pytest.approx(1.0)
        assert max_concurrent_throughput(topo, tm).throughput == pytest.approx(1.0)

    def test_empty_tm_infinite(self):
        jf = jellyfish(8, 3, 1, seed=0)
        assert tm_throughput_upper_bound(jf, TrafficMatrix({})) == float("inf")

    def test_disconnected_zero(self):
        g = nx.Graph()
        g.add_edge(0, 1, capacity=1.0)
        g.add_edge(2, 3, capacity=1.0)
        topo = Topology("disc", g, {0: 1, 2: 1})
        assert tm_throughput_upper_bound(topo, TrafficMatrix({(0, 2): 1.0})) == 0.0


class TestDegenerateConventions:
    """Satellite regression: empty / all-dropped TMs are conventions.

    An empty TM constrains nothing — bound ``inf``, LP throughput ``inf``
    with per-server ``1.0`` — and the bound must agree with the LPs so a
    resilience sweep that drops every demand never divides by a zero or
    crashes on a missing endpoint.
    """

    def _empty(self):
        return TrafficMatrix({})

    def test_bound_empty_tm_is_inf(self):
        jf = jellyfish(8, 3, 2, seed=0)
        assert tm_throughput_upper_bound(jf, self._empty()) == float("inf")

    def test_lp_empty_tm_convention(self):
        jf = jellyfish(8, 3, 2, seed=0)
        for solve in (max_concurrent_throughput, path_throughput):
            result = solve(jf, self._empty())
            assert result.throughput == float("inf")
            assert result.per_server == 1.0
            assert result.disconnected_pairs == 0
            assert result.iterations == 0

    def test_bound_missing_source_is_zero(self):
        # A TM whose source ToR was removed by failures used to raise
        # KeyError out of the distance lookup; it is simply unroutable.
        g = nx.Graph()
        g.add_edge(0, 1, capacity=1.0)
        topo = Topology("tiny", g, {0: 1, 1: 1})
        assert tm_throughput_upper_bound(topo, TrafficMatrix({(9, 0): 1.0})) == 0.0
        assert tm_throughput_upper_bound(topo, TrafficMatrix({(0, 9): 1.0})) == 0.0

    def test_lp_all_disconnected_convention(self):
        g = nx.Graph()
        g.add_edge(0, 1, capacity=1.0)
        g.add_edge(2, 3, capacity=1.0)
        topo = Topology("disc", g, {0: 1, 2: 1})
        tm = TrafficMatrix({(0, 2): 1.0, (2, 0): 1.0})
        for solve in (max_concurrent_throughput, path_throughput):
            result = solve(topo, tm)
            assert result.throughput == 0.0
            assert result.per_server == 0.0
            assert result.disconnected_pairs == 2

    def test_bound_still_bounds_lp_after_dropping(self):
        # Mixed TM: the LP solves the surviving part; the bound on that
        # surviving part still dominates it.
        g = nx.Graph()
        g.add_edge(0, 1, capacity=1.0)
        g.add_edge(2, 3, capacity=1.0)
        topo = Topology("disc", g, {0: 1, 1: 1, 2: 1})
        tm = TrafficMatrix({(0, 1): 1.0, (0, 2): 1.0})
        result = max_concurrent_throughput(topo, tm)
        assert result.disconnected_pairs == 1
        surviving = TrafficMatrix({(0, 1): 1.0})
        assert result.throughput <= tm_throughput_upper_bound(topo, surviving) + 1e-9


class TestBestStaticBound:
    def test_toy_example(self):
        # Paper §4.1: best static topology over 9 racks with 6 network
        # ports and 6 servers each tops out at 80%.
        assert best_static_throughput_bound(9, 6, 6) == pytest.approx(0.8)

    def test_clamped_to_one(self):
        assert best_static_throughput_bound(3, 10, 1) == 1.0

    def test_no_ports_zero(self):
        assert best_static_throughput_bound(10, 0, 4) == 0.0

    def test_bounds_real_static_networks(self):
        # A Jellyfish with the same degree/servers cannot beat the bound.
        jf = jellyfish(12, 5, 3, seed=1)
        from repro.traffic import all_to_all_tm

        tm = all_to_all_tm(jf.tors, 3, fraction=1.0, seed=0)
        exact = max_concurrent_throughput(jf, tm).per_server
        bound = best_static_throughput_bound(12, 5, 3)
        assert exact <= bound + 1e-6
