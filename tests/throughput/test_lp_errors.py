"""Satellite regression: typed LP failures instead of bare RuntimeError.

Before the taxonomy, any HiGHS failure surfaced as ``RuntimeError(res.message)``
and a "successful" result without a solution vector crashed on
``res.x[t_var]``.  These tests pin the mapping, the carried context, and
backward compatibility (every class is still a ``RuntimeError``).
"""

import pytest

from repro.throughput import (
    InfeasibleError,
    SolverFailure,
    SolverNumericalError,
    UnboundedError,
    max_concurrent_throughput,
    path_throughput,
)
from repro.throughput.errors import raise_for_linprog
from repro.topologies import jellyfish
from repro.traffic import longest_matching_tm


class _FakeRes:
    def __init__(self, status, success=False, x=None, message="", nit=5):
        self.status = status
        self.success = success
        self.x = x
        self.message = message
        self.nit = nit


@pytest.fixture
def instance():
    topo = jellyfish(8, 3, 2, seed=0)
    return topo, longest_matching_tm(topo, 1.0, seed=0)


class TestRaiseForLinprog:
    @pytest.mark.parametrize(
        "status,cls",
        [
            (1, SolverNumericalError),
            (2, InfeasibleError),
            (3, UnboundedError),
            (4, SolverNumericalError),
        ],
    )
    def test_status_mapping(self, status, cls):
        with pytest.raises(cls) as info:
            raise_for_linprog(
                _FakeRes(status, message="bad"), formulation="exact"
            )
        assert info.value.status_code == status
        assert info.value.iterations == 5
        assert "bad" in str(info.value)

    def test_missing_solution_vector_guard_runs_first(self):
        # success=True but x=None must not be treated as a success.
        with pytest.raises(SolverNumericalError, match="no solution"):
            raise_for_linprog(
                _FakeRes(0, success=True, x=None), formulation="exact"
            )

    def test_success_with_solution_returns_silently(self):
        raise_for_linprog(
            _FakeRes(0, success=True, x=[0.0]), formulation="exact"
        )

    def test_all_classes_are_runtimeerror(self):
        for cls in (InfeasibleError, UnboundedError, SolverNumericalError):
            assert issubclass(cls, SolverFailure)
            assert issubclass(cls, RuntimeError)

    def test_context_lands_in_attributes_and_message(self):
        with pytest.raises(InfeasibleError) as info:
            raise_for_linprog(
                _FakeRes(2),
                formulation="paths",
                context={"topology": "jf", "demands": 3},
            )
        exc = info.value
        assert exc.formulation == "paths"
        assert exc.context == {"topology": "jf", "demands": 3}
        assert "formulation=paths" in str(exc)
        assert "topology=jf" in str(exc)

    def test_empty_message_falls_back_to_reason(self):
        with pytest.raises(InfeasibleError, match="infeasible"):
            raise_for_linprog(_FakeRes(2, message=""), formulation="exact")


class TestEntryPointsRaiseTyped:
    def test_exact_formulation(self, instance, monkeypatch):
        import repro.throughput.lp as lp

        topo, tm = instance
        monkeypatch.setattr(lp, "linprog", lambda *a, **k: _FakeRes(2))
        with pytest.raises(InfeasibleError) as info:
            max_concurrent_throughput(topo, tm)
        assert info.value.formulation == "exact"
        assert info.value.context["topology"] == topo.name
        assert info.value.context["demands"] == tm.num_flows

    def test_paths_formulation(self, instance, monkeypatch):
        import repro.throughput.lp as lp

        topo, tm = instance
        monkeypatch.setattr(lp, "linprog", lambda *a, **k: _FakeRes(3))
        with pytest.raises(UnboundedError) as info:
            path_throughput(topo, tm, k=4)
        assert info.value.formulation == "paths"
        assert info.value.context["k"] == 4

    def test_legacy_except_runtimeerror_still_works(self, instance, monkeypatch):
        import repro.throughput.lp as lp

        topo, tm = instance
        monkeypatch.setattr(lp, "linprog", lambda *a, **k: _FakeRes(4))
        try:
            max_concurrent_throughput(topo, tm)
        except RuntimeError as exc:
            assert isinstance(exc, SolverNumericalError)
        else:  # pragma: no cover - the solve must fail
            pytest.fail("expected a RuntimeError")
