"""Smoke tests: every documented CLI command exits 0 on a tiny input.

Cheaper and broader than the per-command behavioural tests in
``test_cli.py`` — the point is that no subcommand's wiring (argument
plumbing, registry construction, output formatting) is broken.
"""

import json

import pytest

from repro import obs
from repro.cli import main
from repro.obs import load_manifest


@pytest.fixture(autouse=True)
def _obs_disabled():
    obs.disable()
    yield
    obs.disable()


@pytest.mark.parametrize(
    "argv",
    [
        ["topology", "jellyfish", "--switches", "8", "--degree", "4",
         "--servers", "2"],
        ["topology", "fattree", "--k", "4"],
        ["throughput", "jellyfish", "--switches", "8", "--degree", "4",
         "--servers", "2", "--fractions", "1.0", "--solver", "paths",
         "--k-paths", "4"],
        ["throughput", "jellyfish", "--switches", "8", "--degree", "4",
         "--servers", "2", "--fractions", "1.0", "--solver",
         "highs-batched"],
        ["throughput", "jellyfish", "--switches", "8", "--degree", "4",
         "--servers", "2", "--fractions", "1.0", "--solver", "mcf-approx",
         "--epsilon", "0.1"],
        ["cost"],
        ["cost", "--kind", "jellyfish", "--switches", "8", "--degree", "4",
         "--servers", "2"],
        ["cabling", "jellyfish", "--switches", "8", "--degree", "4",
         "--servers", "2"],
        ["cabling", "fattree", "--k", "4"],
    ],
    ids=lambda argv: "-".join(argv[:2]),
)
def test_command_exits_zero(argv, capsys):
    assert main(argv) == 0
    assert capsys.readouterr().out.strip()


class TestExitCodes:
    """Satellite regression: handlers report failure instead of exit 0.

    ``cost``/``cabling``/``topology`` used to either return 0
    unconditionally or leak a ValueError traceback on a bad ``--kind``;
    they now exit 2 (usage error) with the message on stderr, and
    ``throughput`` exits 1 when the solver reports non-optimal solves.
    """

    def test_cost_bad_kind_exits_two(self, capsys):
        assert main(["cost", "--kind", "bogus"]) == 2
        assert "unknown topology kind" in capsys.readouterr().err

    def test_cabling_bad_failure_spec_exits_two(self, capsys):
        rc = main(["cabling", "jellyfish", "--switches", "8", "--degree",
                   "4", "--servers", "2", "--failure", "nonsense-mode"])
        assert rc == 2
        assert capsys.readouterr().err

    def test_topology_bad_failure_spec_exits_two(self, capsys):
        rc = main(["topology", "fattree", "--k", "4",
                   "--failure", "nonsense-mode"])
        assert rc == 2
        assert capsys.readouterr().err

    def test_throughput_solver_failure_exits_one(self, capsys, monkeypatch):
        import repro.throughput.lp as lp

        class _Fake:
            status, success, x, message, nit = 2, False, None, "infeasible", 3

        monkeypatch.setattr(lp, "linprog", lambda *a, **k: _Fake())
        rc = main(["throughput", "jellyfish", "--switches", "8", "--degree",
                   "4", "--servers", "2", "--fractions", "1.0"])
        captured = capsys.readouterr()
        assert rc == 1
        assert "non-optimal" in captured.err

    def test_sweep_with_failing_point_exits_one(self, tmp_path, capsys):
        spec = {
            "defaults": {
                "topology": {"family": "jellyfish", "switches": 8,
                             "degree": 4, "servers": 2, "seed": 1},
                "workload": {"solver": "exact", "fraction": 1.0},
                "engine": "lp",
            },
            "points": [
                {"name": "good"},
                {"name": "bad", "topology": {"family": "jellyfish",
                                             "switches": 0}},
            ],
        }
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(spec))
        rc = main(["sweep", str(path), "--no-cache", "--quiet",
                   "--retries", "0", "--jobs", "1"])
        assert rc == 1
        assert "failed" in capsys.readouterr().out


class TestProfileSmoke:
    def _sweep_file(self, tmp_path):
        spec = {
            "defaults": {
                "topology": {"family": "jellyfish", "switches": 8,
                             "degree": 4, "servers": 2, "seed": 1},
                "workload": {"pattern": "longest_matching",
                             "solver": "paths", "k_paths": 4},
                "engine": "lp",
                "seed": 1,
            },
            "points": [{"name": "smoke"}],
        }
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(spec))
        return str(path)

    def test_profile_exits_zero_and_writes_valid_manifest(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        rc = main(["profile", self._sweep_file(tmp_path),
                   "--run-dir", str(run_dir)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "spans (by total time):" in out
        manifest = load_manifest(str(run_dir / "manifest.json"))
        assert "runner.sweep" in manifest["spans"]["by_name"]
        assert (run_dir / "trace.jsonl").exists()

    def test_profile_missing_file_exits_two(self, tmp_path, capsys):
        rc = main(["profile", str(tmp_path / "nope.json")])
        assert rc == 2
        assert "cannot load" in capsys.readouterr().err


class TestDesignSmoke:
    def _target_file(self, tmp_path, **overrides):
        target = {
            "servers": 16,
            "throughput_per_server": 0.5,
            "families": ["jellyfish", "xpander"],
            "max_switches": 12,
            "radix": 8,
            "sensitivity": False,
        }
        target.update(overrides)
        path = tmp_path / "target.json"
        path.write_text(json.dumps(target))
        return str(path)

    def test_design_exits_zero_and_reports_pruning(self, tmp_path, capsys):
        rc = main(["design", self._target_file(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "pruned before LP:" in out
        assert "best:" in out
        assert "evaluated designs" in out

    def test_design_writes_report_json(self, tmp_path, capsys):
        out_path = tmp_path / "report.json"
        rc = main(["design", self._target_file(tmp_path),
                   "--out", str(out_path)])
        assert rc == 0
        report = json.loads(out_path.read_text())
        assert report["feasible"] is True
        assert report["best"]["spec"] in report["pareto"]
        assert capsys.readouterr().out

    def test_design_infeasible_exits_one(self, tmp_path, capsys):
        rc = main(["design", self._target_file(tmp_path, servers=100000)])
        captured = capsys.readouterr()
        assert rc == 1
        assert "no enumerated candidate" in captured.err

    def test_design_bad_target_exits_two(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"servers": -1}))
        assert main(["design", str(path)]) == 2
        assert capsys.readouterr().err

    def test_design_missing_file_exits_two(self, tmp_path, capsys):
        rc = main(["design", str(tmp_path / "nope.json")])
        assert rc == 2
        assert "cannot load" in capsys.readouterr().err

    def test_no_sensitivity_flag_skips_tornado(self, tmp_path, capsys):
        out_path = tmp_path / "report.json"
        rc = main(["design", self._target_file(tmp_path, sensitivity=True),
                   "--no-sensitivity", "--out", str(out_path)])
        assert rc == 0
        assert json.loads(out_path.read_text())["sensitivity"] == []
        assert capsys.readouterr().out
