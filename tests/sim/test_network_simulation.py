"""Integration tests for the network builder and the experiment runner."""

import pytest

from repro.sim import NetworkParams, PacketSimulation, run_packet_experiment
from repro.sim.simulation import ROUTING_CHOICES, make_routing
from repro.topologies import fattree, xpander
from repro.traffic import FlowSpec


@pytest.fixture(scope="module")
def ft():
    return fattree(4).topology  # 16 servers


FAST = NetworkParams(link_rate_bps=1e9)


class TestNetworkBuild:
    def test_host_and_switch_counts(self, ft):
        sim = PacketSimulation(ft, routing="ecmp", network_params=FAST)
        assert len(sim.network.hosts) == 16
        assert len(sim.network.switches) == 20

    def test_every_host_wired(self, ft):
        sim = PacketSimulation(ft, routing="ecmp", network_params=FAST)
        for host in sim.network.hosts.values():
            assert host.uplink is not None
            assert host.server_id in sim.network.switches[host.tor].host_ports

    def test_link_count(self, ft):
        sim = PacketSimulation(ft, routing="ecmp", network_params=FAST)
        # 2 per cable + 2 per server.
        assert len(sim.network.links) == 2 * ft.num_links + 2 * 16

    def test_make_routing_rejects_unknown(self, ft):
        with pytest.raises(ValueError) as exc_info:
            make_routing("bogus", ft)
        message = str(exc_info.value)
        assert "'bogus'" in message
        for choice in ROUTING_CHOICES:
            assert choice in message

    def test_routing_choices_complete(self):
        assert ROUTING_CHOICES == ("aecmp", "chyb", "ecmp", "hyb", "ksp", "vlb")


class TestSingleFlowDelivery:
    @pytest.mark.parametrize("routing", ["ecmp", "vlb", "hyb"])
    def test_flow_completes_under_each_routing(self, ft, routing):
        flows = [FlowSpec(0, 0, 15, 50_000, 0.0)]
        stats = run_packet_experiment(
            ft, flows, routing=routing, measure_start=0.0, measure_end=0.01,
            network_params=FAST,
        )
        assert stats.num_unfinished == 0

    def test_fct_bounded_below_by_size(self, ft):
        size = 1_000_000
        flows = [FlowSpec(0, 0, 15, size, 0.0)]
        stats = run_packet_experiment(
            ft, flows, routing="ecmp", measure_start=0.0, measure_end=0.01,
            network_params=FAST,
        )
        fct = stats.records[0].fct
        assert fct >= size * 8 / 1e9

    def test_same_rack_flow(self, ft):
        flows = [FlowSpec(0, 0, 1, 20_000, 0.0)]  # both under ToR 0
        stats = run_packet_experiment(
            ft, flows, routing="ecmp", measure_start=0.0, measure_end=0.01,
            network_params=FAST,
        )
        assert stats.num_unfinished == 0

    def test_identical_endpoints_rejected(self, ft):
        sim = PacketSimulation(ft, routing="ecmp", network_params=FAST)
        with pytest.raises(ValueError):
            sim.inject([FlowSpec(0, 3, 3, 1000, 0.0)])


class TestDeterminism:
    def test_same_flows_same_results(self, ft):
        flows = [
            FlowSpec(i, i, 15 - i, 30_000 + 1000 * i, 0.0001 * i) for i in range(6)
        ]
        a = run_packet_experiment(
            ft, flows, routing="hyb", measure_start=0.0, measure_end=0.01,
            network_params=FAST, seed=3,
        )
        b = run_packet_experiment(
            ft, flows, routing="hyb", measure_start=0.0, measure_end=0.01,
            network_params=FAST, seed=3,
        )
        assert [r.fct for r in a.records] == [r.fct for r in b.records]


class TestMeasurementWindow:
    def test_only_window_flows_measured(self, ft):
        flows = [
            FlowSpec(0, 0, 15, 10_000, 0.000),
            FlowSpec(1, 1, 14, 10_000, 0.005),
            FlowSpec(2, 2, 13, 10_000, 0.050),
        ]
        stats = run_packet_experiment(
            ft, flows, routing="ecmp", measure_start=0.004, measure_end=0.01,
            network_params=FAST,
        )
        assert stats.num_flows == 1
        assert stats.records[0].flow_id == 1


class TestUnconstrainedServerLinks:
    def test_projector_mode_faster_than_constrained(self):
        # With server links unconstrained, many-to-one incast into one
        # host is absorbed by the huge access link (no server bottleneck).
        xp = xpander(3, 4, 4)
        senders = [1, 2, 3, 4, 5, 6]
        flows = [
            FlowSpec(i, s, 0, 200_000, 0.0) for i, s in enumerate(senders)
        ]
        constrained = run_packet_experiment(
            xp, flows, routing="ecmp", measure_start=0.0, measure_end=0.01,
            network_params=NetworkParams(link_rate_bps=1e9, server_link_rate_bps=1e9),
        )
        unconstrained = run_packet_experiment(
            xp, flows, routing="ecmp", measure_start=0.0, measure_end=0.01,
            network_params=NetworkParams(link_rate_bps=1e9, server_link_rate_bps=None),
        )
        assert unconstrained.avg_fct() < constrained.avg_fct()


class TestVlbVsEcmpSingleFlow:
    def test_both_complete_with_comparable_fct(self, ft):
        # One isolated flow on an idle fat-tree: ECMP and VLB both have
        # ample path diversity, so FCTs should be within a small factor
        # (VLB pays a detour, but flowlet-level multipathing can offset it).
        flows = [FlowSpec(0, 0, 15, 200_000, 0.0)]
        ecmp = run_packet_experiment(
            ft, flows, routing="ecmp", measure_start=0.0, measure_end=0.01,
            network_params=FAST,
        )
        vlb = run_packet_experiment(
            ft, flows, routing="vlb", measure_start=0.0, measure_end=0.01,
            network_params=FAST, seed=1,
        )
        assert ecmp.num_unfinished == 0 and vlb.num_unfinished == 0
        ratio = vlb.avg_fct() / ecmp.avg_fct()
        assert 0.3 < ratio < 3.0
