"""Tests for the discrete-event engine."""

import pytest

from repro.sim import Engine


class TestScheduling:
    def test_time_ordering(self):
        e = Engine()
        log = []
        e.schedule(0.3, lambda: log.append("c"))
        e.schedule(0.1, lambda: log.append("a"))
        e.schedule(0.2, lambda: log.append("b"))
        e.run()
        assert log == ["a", "b", "c"]

    def test_fifo_tiebreak(self):
        e = Engine()
        log = []
        for i in range(5):
            e.schedule(0.1, log.append, i)
        e.run()
        assert log == [0, 1, 2, 3, 4]

    def test_arg_passing(self):
        e = Engine()
        got = []
        e.schedule(0.0, got.append, 42)
        e.run()
        assert got == [42]

    def test_clock_advances(self):
        e = Engine()
        seen = []
        e.schedule(0.5, lambda: seen.append(e.now))
        e.run()
        assert seen == [0.5]
        assert e.now == 0.5

    def test_negative_delay_rejected(self):
        e = Engine()
        with pytest.raises(ValueError):
            e.schedule(-0.1, lambda: None)

    def test_schedule_at(self):
        e = Engine()
        seen = []
        e.schedule_at(1.5, lambda: seen.append(e.now))
        e.run()
        assert seen == [1.5]

    def test_nested_scheduling(self):
        e = Engine()
        log = []

        def first():
            log.append(("first", e.now))
            e.schedule(0.1, lambda: log.append(("second", e.now)))

        e.schedule(0.2, first)
        e.run()
        assert log == [("first", 0.2), ("second", pytest.approx(0.3))]


class TestRunLimits:
    def test_until_stops_before_future_events(self):
        e = Engine()
        log = []
        e.schedule(0.1, lambda: log.append(1))
        e.schedule(1.0, lambda: log.append(2))
        e.run(until=0.5)
        assert log == [1]
        assert e.now == 0.5
        e.run()
        assert log == [1, 2]

    def test_max_events(self):
        e = Engine()
        log = []
        for i in range(10):
            e.schedule(0.01 * (i + 1), log.append, i)
        processed = e.run(max_events=3)
        assert processed == 3
        assert log == [0, 1, 2]

    def test_events_processed_counter(self):
        e = Engine()
        for i in range(4):
            e.schedule(0.01, lambda: None)
        e.run()
        assert e.events_processed == 4


class TestCancellation:
    def test_cancel_prevents_callback(self):
        e = Engine()
        log = []
        h = e.schedule_cancellable(0.1, lambda: log.append("x"))
        h.cancel()
        e.run()
        assert log == []

    def test_cancelled_not_counted(self):
        e = Engine()
        h = e.schedule_cancellable(0.1, lambda: None)
        h.cancel()
        assert e.run() == 0

    def test_cancel_after_fire_is_noop(self):
        e = Engine()
        log = []
        h = e.schedule_cancellable(0.1, lambda: log.append("x"))
        e.run()
        h.cancel()
        assert log == ["x"]
