"""The optimized event loop is a pure refactoring of the reference loop.

``Engine.run`` (pop-then-reschedule, hoisted heap ops, same-timestamp
batching) must be byte-identical in behaviour to ``Engine.run_reference``
(the retained pre-optimization loop): same callback order, same clock
values, same cancellation accounting — proven here both on adversarial
micro-scenarios and on full packet-simulation metrics.

Also the `schedule_at` regression: scheduling in the past must raise a
``ValueError`` that talks about the absolute ``when`` the caller passed,
not the internally derived ``delay``.
"""

import pytest

from repro.sim import Engine, NetworkParams, run_packet_experiment
from repro.topologies import fattree
from repro.traffic import FlowSpec


class TestScheduleAtRegression:
    def test_past_when_rejected_with_when_in_message(self):
        e = Engine()
        e.schedule(1.0, lambda: None)
        e.run()
        assert e.now == 1.0
        with pytest.raises(ValueError) as exc_info:
            e.schedule_at(0.25, lambda: None)
        message = str(exc_info.value)
        assert "when=0.25" in message
        assert "now=1.0" in message
        assert "delay=" not in message

    def test_exactly_now_is_allowed(self):
        e = Engine()
        e.schedule(1.0, lambda: None)
        e.run()
        seen = []
        e.schedule_at(1.0, lambda: seen.append(e.now))
        e.run()
        assert seen == [1.0]


def _scripted_run(run_method):
    """An adversarial scenario: ties, nested scheduling at the current
    timestamp, cancellations (some mid-run), horizons, max_events."""
    e = Engine()
    log = []

    def tick(tag):
        log.append((tag, e.now))
        if tag == "a":  # same-timestamp nested work: joins the batch
            e.schedule(0.0, tick, "a-child")
        if tag == "b":
            handle_late.cancel()  # cancel an event already in the heap

    e.schedule(0.1, tick, "a")
    e.schedule(0.1, tick, "b")  # FIFO tie with "a"
    e.schedule(0.3, tick, "c")
    handle_early = e.schedule_cancellable(0.2, tick, "early")
    handle_late = e.schedule_cancellable(0.25, tick, "late")
    handle_early.cancel()

    processed = []
    processed.append(run_method(e, until=0.1))
    processed.append(run_method(e, until=0.2))
    e.schedule(0.05, tick, "d")
    processed.append(run_method(e, max_events=1))
    processed.append(run_method(e))
    log.append(("end", e.now))
    return log, processed, e.events_processed, e.pending


def test_scripted_scenario_identical():
    optimized = _scripted_run(lambda e, **kw: Engine.run(e, **kw))
    reference = _scripted_run(lambda e, **kw: Engine.run_reference(e, **kw))
    assert optimized == reference


def test_empty_and_horizon_only_runs_identical():
    for runner in (Engine.run, Engine.run_reference):
        e = Engine()
        assert runner(e) == 0
        assert runner(e, until=2.0) == 0
        assert e.now == 2.0  # clock advances to the horizon


def _packet_metrics(monkeypatch, use_reference):
    if use_reference:
        monkeypatch.setattr(Engine, "run", Engine.run_reference)
    topo = fattree(4).topology
    flows = [
        FlowSpec(i, src, dst, 30_000 + 1000 * i, 0.0001 * i)
        for i, (src, dst) in enumerate(
            [(0, 15), (1, 14), (2, 13), (3, 12), (4, 11), (5, 10),
             (8, 7), (9, 6)]
        )
    ]
    stats = run_packet_experiment(
        topo, flows, routing="ecmp", measure_start=0.0, measure_end=0.02,
        network_params=NetworkParams(link_rate_bps=1e9),
    )
    return stats.records, stats.summary()


def test_packet_simulation_metrics_byte_identical(monkeypatch):
    """End-to-end determinism: full per-flow records and the summary are
    equal, field for field, between the two loops."""
    with monkeypatch.context() as m:
        ref_records, ref_summary = _packet_metrics(m, use_reference=True)
    opt_records, opt_summary = _packet_metrics(monkeypatch, use_reference=False)
    assert opt_records == ref_records
    # repr-compare: equal apart from NaN placeholders (nan != nan), which
    # must still appear in exactly the same slots.
    assert repr(opt_summary) == repr(ref_summary)
