"""Tests for simulated links: serialization, queueing, ECN, drops."""

import pytest

from repro.sim import Engine, Link, Packet
from repro.sim.packet import HEADER_BYTES


def data_packet(payload=1460, flow=0, seq=0):
    return Packet(
        flow_id=flow, src_server=0, dst_server=1, dst_tor=0, seq=seq, payload=payload
    )


class TestSerialization:
    def test_transmission_delay(self):
        e = Engine()
        got = []
        link = Link(e, rate_bps=1e9, prop_delay=0.0, sink=lambda p: got.append(e.now))
        pkt = data_packet()
        link.send(pkt)
        e.run()
        expected = pkt.wire_bytes * 8 / 1e9
        assert got == [pytest.approx(expected)]

    def test_propagation_added(self):
        e = Engine()
        got = []
        link = Link(e, rate_bps=1e9, prop_delay=1e-6, sink=lambda p: got.append(e.now))
        pkt = data_packet()
        link.send(pkt)
        e.run()
        assert got == [pytest.approx(pkt.wire_bytes * 8 / 1e9 + 1e-6)]

    def test_back_to_back_serialized(self):
        e = Engine()
        got = []
        link = Link(e, rate_bps=1e9, prop_delay=0.0, sink=lambda p: got.append(e.now))
        p1, p2 = data_packet(seq=0), data_packet(seq=1460)
        link.send(p1)
        link.send(p2)
        e.run()
        per = p1.wire_bytes * 8 / 1e9
        assert got == [pytest.approx(per), pytest.approx(2 * per)]

    def test_fifo_order(self):
        e = Engine()
        got = []
        link = Link(e, rate_bps=1e9, prop_delay=0.0, sink=lambda p: got.append(p.seq))
        for s in (0, 1460, 2920):
            link.send(data_packet(seq=s))
        e.run()
        assert got == [0, 1460, 2920]


class TestQueueAndDrops:
    def test_drop_when_full(self):
        e = Engine()
        got = []
        wire = 1460 + HEADER_BYTES
        link = Link(
            e,
            rate_bps=1e9,
            prop_delay=0.0,
            sink=lambda p: got.append(p),
            queue_bytes=2 * wire,
        )
        for s in range(5):
            link.send(data_packet(seq=s * 1460))
        e.run()
        # One in flight + two queued; two dropped.
        assert len(got) == 3
        assert link.dropped_packets == 2

    def test_occupancy_tracks_bytes(self):
        e = Engine()
        link = Link(e, rate_bps=1e9, prop_delay=0.0, sink=lambda p: None)
        link.send(data_packet())
        assert link.queue_occupancy_bytes == 0  # first packet in service
        link.send(data_packet())
        assert link.queue_occupancy_bytes == 1460 + HEADER_BYTES
        e.run()
        assert link.queue_occupancy_bytes == 0


class TestEcnMarking:
    def test_marks_above_threshold(self):
        e = Engine()
        got = []
        wire = 1460 + HEADER_BYTES
        link = Link(
            e,
            rate_bps=1e9,
            prop_delay=0.0,
            sink=lambda p: got.append(p),
            ecn_threshold_bytes=2 * wire,
        )
        for s in range(5):
            link.send(data_packet(seq=s * 1460))
        e.run()
        # Packets 0 (in service), 1, 2 unmarked; 3 and 4 exceed threshold.
        marks = [p.ecn_marked for p in sorted(got, key=lambda p: p.seq)]
        assert marks == [False, False, False, True, True]
        assert link.marked_packets == 2

    def test_marking_disabled(self):
        e = Engine()
        got = []
        link = Link(
            e, rate_bps=1e9, prop_delay=0.0, sink=lambda p: got.append(p),
            ecn_threshold_bytes=None,
        )
        for s in range(10):
            link.send(data_packet(seq=s * 1460))
        e.run()
        assert all(not p.ecn_marked for p in got)


class TestAccounting:
    def test_counters_and_utilization(self):
        e = Engine()
        link = Link(e, rate_bps=1e9, prop_delay=0.0, sink=lambda p: None)
        pkt = data_packet()
        link.send(pkt)
        e.run()
        assert link.transmitted_packets == 1
        assert link.transmitted_bytes == pkt.wire_bytes
        busy = pkt.wire_bytes * 8 / 1e9
        assert link.utilization(busy * 2) == pytest.approx(0.5)

    def test_invalid_configuration(self):
        e = Engine()
        with pytest.raises(ValueError):
            Link(e, rate_bps=0, prop_delay=0.0, sink=lambda p: None)
        with pytest.raises(ValueError):
            Link(e, rate_bps=1e9, prop_delay=-1.0, sink=lambda p: None)
