"""Tests for the event heap's cancelled-entry accounting and compaction."""

from repro.sim.engine import Engine


def test_pending_counts_live_events_only():
    e = Engine()
    e.schedule(1.0, lambda: None)
    h = e.schedule_cancellable(2.0, lambda: None)
    assert e.pending == 2
    h.cancel()
    assert e.pending == 1


def test_heap_compacts_under_mass_cancellation():
    e = Engine()
    handles = [
        e.schedule_cancellable(1.0 + i * 1e-6, lambda: None)
        for i in range(1000)
    ]
    for h in handles[:900]:
        h.cancel()
    assert e.pending == 100
    # Dead entries were purged, not merely counted.
    assert len(e._heap) < 300
    e.run()
    assert e.pending == 0


def test_cancelled_events_never_fire_after_compaction():
    e = Engine()
    fired = []
    handles = [
        e.schedule_cancellable(0.1 + i * 1e-3, lambda i=i: fired.append(i))
        for i in range(50)
    ]
    for h in handles[::2]:
        h.cancel()
    e.run()
    assert fired == list(range(1, 50, 2))


def test_double_cancel_counts_once():
    e = Engine()
    h = e.schedule_cancellable(1.0, lambda: None)
    h.cancel()
    h.cancel()
    assert e.pending == 0
    e.run()
    assert e._cancelled == 0


def test_cancel_after_fire_is_noop():
    e = Engine()
    fired = []
    h = e.schedule_cancellable(0.5, lambda: fired.append(1))
    e.run()
    assert fired == [1]
    h.cancel()  # late cancel must not corrupt the accounting
    assert e.pending == 0
    assert e._cancelled == 0


def test_cancellation_from_inside_callback():
    """A callback cancelling other timers (ack beats timeout) stays sound."""
    e = Engine()
    fired = []
    timers = []

    def ack():
        for h in timers:
            h.cancel()
        fired.append("ack")

    timers.extend(
        e.schedule_cancellable(1.0 + i * 1e-6, lambda: fired.append("rto"))
        for i in range(100)
    )
    e.schedule(0.5, ack)
    e.run()
    assert fired == ["ack"]
    assert e.pending == 0


def test_mixed_cancel_fire_ordering_preserved():
    e = Engine()
    order = []
    e.schedule(0.3, lambda: order.append("c"))
    h1 = e.schedule_cancellable(0.1, lambda: order.append("a"))
    e.schedule_cancellable(0.2, lambda: order.append("b"))
    h1.cancel()
    e.run()
    assert order == ["b", "c"]
