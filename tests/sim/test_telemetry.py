"""Tests for link telemetry."""


from repro.sim import (
    NetworkParams,
    PacketSimulation,
    network_report,
)
from repro.topologies import xpander
from repro.traffic import FlowSpec

FAST = NetworkParams(link_rate_bps=1e9)


def run_two_rack_ecmp():
    xp = xpander(4, 6, 4)
    u, v = next(iter(xp.graph.edges()))
    su, sv = xp.tor_to_servers()[u], xp.tor_to_servers()[v]
    flows = [FlowSpec(i, su[i % 4], sv[(i + 1) % 4], 150_000, 0.0001 * i)
             for i in range(20)]
    sim = PacketSimulation(xp, routing="ecmp", network_params=FAST)
    sim.inject(flows)
    sim.run(0.0, 0.01)
    return sim, (u, v)


class TestNetworkReport:
    def test_covers_all_links(self):
        xp = xpander(3, 4, 2)
        sim = PacketSimulation(xp, routing="ecmp", network_params=FAST)
        report = network_report(sim.network, elapsed=1.0)
        # 2 per cable + 2 per server.
        assert len(report.links) == 2 * xp.num_links + 2 * xp.num_servers

    def test_idle_network_zero_utilization(self):
        xp = xpander(3, 4, 2)
        sim = PacketSimulation(xp, routing="ecmp", network_params=FAST)
        report = network_report(sim.network, elapsed=1.0)
        assert report.max_utilization == 0.0
        assert report.total_drops == 0

    def test_hotspot_is_the_direct_link(self):
        """§6.1 diagnosis: under two-adjacent-rack ECMP traffic, the
        single direct link is (one of) the hottest."""
        sim, (u, v) = run_two_rack_ecmp()
        report = network_report(sim.network)
        hottest = report.hottest(4)
        descriptions = [l.description for l in hottest]
        assert any(
            f"switch {u} -> switch {v}" == d or f"switch {v} -> switch {u}" == d
            for d in descriptions
        )
        assert report.max_utilization > 0.5

    def test_marks_accumulated_under_congestion(self):
        sim, _ = run_two_rack_ecmp()
        report = network_report(sim.network)
        assert report.total_marks > 0
        assert any(l.max_queue_bytes > 0 for l in report.links)

    def test_mean_utilization_bounded(self):
        sim, _ = run_two_rack_ecmp()
        report = network_report(sim.network)
        assert 0.0 < report.mean_utilization <= report.max_utilization <= 1.0
