"""Tests for the DCTCP transport over a two-link loopback harness."""

import pytest

from repro.sim import Engine, Link, MSS, TransportParams
from repro.sim.tcp import DctcpReceiver, DctcpSender



class _NullRouting:
    """Routing stub: no VLB, no tables needed for a point-to-point pipe."""

    def choose_via(self, flow_id, bytes_sent, src_tor, dst_tor):
        return None

    def note_ecn(self, flow_id):
        pass

    def flow_done(self, flow_id):
        pass


def make_pipe(
    total_bytes,
    rate_bps=1e9,
    prop_delay=1e-6,
    queue_bytes=200 * 1520,
    ecn_threshold=20 * 1520,
    params=None,
):
    """Sender and receiver joined by one link in each direction."""
    engine = Engine()
    params = params or TransportParams()
    done = {}

    receiver_box = {}

    fwd = Link(
        engine,
        rate_bps=rate_bps,
        prop_delay=prop_delay,
        sink=lambda p: receiver_box["rx"].on_data(p),
        queue_bytes=queue_bytes,
        ecn_threshold_bytes=ecn_threshold,
    )
    sender_box = {}
    rev = Link(
        engine,
        rate_bps=rate_bps,
        prop_delay=prop_delay,
        sink=lambda p: sender_box["tx"].on_ack(p.ack_seq, p.ecn_echo),
        queue_bytes=queue_bytes,
        ecn_threshold_bytes=ecn_threshold,
    )
    receiver = DctcpReceiver(
        engine=engine,
        transmit=rev.send,
        flow_id=0,
        src_server=0,
        dst_server=1,
        src_tor=0,
        total_bytes=total_bytes,
        on_complete=lambda t: done.setdefault("time", t),
    )
    receiver_box["rx"] = receiver
    sender = DctcpSender(
        engine=engine,
        params=params,
        routing=_NullRouting(),
        transmit=fwd.send,
        flow_id=0,
        src_server=0,
        dst_server=1,
        src_tor=0,
        dst_tor=1,
        total_bytes=total_bytes,
    )
    sender_box["tx"] = sender
    return engine, sender, receiver, fwd, rev, done


class TestBasicTransfer:
    def test_tiny_flow_completes(self):
        engine, sender, receiver, *_, done = make_pipe(500)
        sender.start()
        engine.run(until=1.0)
        assert receiver.completed
        assert "time" in done

    def test_large_flow_completes_fully(self):
        total = 500_000
        engine, sender, receiver, *_ = make_pipe(total)
        sender.start()
        engine.run(until=1.0)
        assert receiver.rcv_nxt == total
        assert sender.completed

    def test_fct_close_to_serialization_bound(self):
        total = 1_000_000
        engine, sender, receiver, fwd, rev, done = make_pipe(total, rate_bps=1e9)
        sender.start()
        engine.run(until=1.0)
        lower_bound = total * 8 / 1e9
        assert done["time"] >= lower_bound
        assert done["time"] < 3 * lower_bound  # slow start overhead only

    def test_throughput_near_line_rate_for_long_flow(self):
        total = 4_000_000
        engine, sender, receiver, *_, done = make_pipe(total, rate_bps=1e9)
        sender.start()
        engine.run(until=1.0)
        goodput = total * 8 / done["time"]
        assert goodput > 0.7e9


class TestWindowDynamics:
    def test_slow_start_doubles(self):
        total = 10_000_000
        engine, sender, *_ = make_pipe(total)
        sender.start()
        initial = sender.cwnd
        engine.run(until=0.002)
        assert sender.cwnd > 1.5 * initial

    def test_ecn_keeps_queue_bounded(self):
        # With DCTCP + marking at K, the queue should hover near K, far
        # below the drop-tail limit, and nothing should be dropped.
        total = 5_000_000
        engine, sender, receiver, fwd, rev, done = make_pipe(
            total, queue_bytes=500 * 1520, ecn_threshold=20 * 1520
        )
        sender.start()
        engine.run(until=1.0)
        assert fwd.dropped_packets == 0
        assert fwd.marked_packets > 0
        assert receiver.completed

    def test_alpha_moves_toward_mark_fraction(self):
        total = 5_000_000
        engine, sender, *_ = make_pipe(total)
        sender.start()
        engine.run(until=1.0)
        # Persistent congestion on a single bottleneck: alpha must have
        # moved well below its initial 1.0 (marks are intermittent).
        assert 0.0 <= sender.alpha < 1.0

    def test_no_ecn_mode_fills_queue(self):
        total = 5_000_000
        params = TransportParams(use_ecn=False)
        engine, sender, receiver, fwd, rev, done = make_pipe(
            total, ecn_threshold=None, params=params, queue_bytes=2000 * 1520
        )
        sender.start()
        engine.run(until=1.0)
        assert receiver.completed


class TestLossRecovery:
    def test_completes_despite_tiny_queue(self):
        # Queue of 3 packets forces drops during slow start; fast
        # retransmit / RTO must still complete the flow.
        total = 2_000_000
        engine, sender, receiver, fwd, rev, done = make_pipe(
            total, queue_bytes=3 * 1520, ecn_threshold=None,
            params=TransportParams(use_ecn=False),
        )
        sender.start()
        engine.run(until=5.0)
        assert receiver.completed
        assert fwd.dropped_packets > 0
        assert sender.retransmissions > 0

    def test_in_order_delivery_invariant(self):
        # rcv_nxt only moves forward and never exceeds total.
        total = 300_000
        engine, sender, receiver, *_ = make_pipe(total, queue_bytes=5 * 1520)
        sender.start()
        last = 0
        for _ in range(200):
            engine.run(max_events=100)
            assert receiver.rcv_nxt >= last
            assert receiver.rcv_nxt <= total
            last = receiver.rcv_nxt
            if receiver.completed:
                break
        engine.run(until=5.0)
        assert receiver.completed


class TestValidation:
    def test_zero_byte_flow_rejected(self):
        engine = Engine()
        with pytest.raises(ValueError):
            DctcpSender(
                engine=engine,
                params=TransportParams(),
                routing=_NullRouting(),
                transmit=lambda p: None,
                flow_id=0,
                src_server=0,
                dst_server=1,
                src_tor=0,
                dst_tor=1,
                total_bytes=0,
            )

    def test_flowlet_increments_after_gap(self):
        total = 3 * MSS
        engine, sender, receiver, *_ = make_pipe(
            total, params=TransportParams(flowlet_gap=50e-6)
        )
        sender.start()
        first = sender.flowlet_id
        engine.run(until=1.0)
        assert sender.flowlet_id >= first
