"""Tests for FCT statistics."""

import math

import pytest

from repro.sim import FlowRecord, FlowStats, percentile


def record(fid, size, start, end):
    return FlowRecord(fid, 0, 1, size, start, end)


class TestPercentile:
    def test_median(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_p99_of_100(self):
        values = [float(i) for i in range(1, 101)]
        assert percentile(values, 99) == 99.0

    def test_p100_is_max(self):
        assert percentile([5.0, 9.0, 1.0], 100) == 9.0

    def test_p0_is_min(self):
        assert percentile([5.0, 9.0, 1.0], 0) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 150)


class TestFlowRecord:
    def test_fct(self):
        r = record(0, 1000, 1.0, 1.5)
        assert r.fct == pytest.approx(0.5)
        assert r.finished

    def test_unfinished_raises(self):
        r = FlowRecord(0, 0, 1, 1000, 1.0)
        assert not r.finished
        with pytest.raises(ValueError):
            _ = r.fct

    def test_throughput(self):
        r = record(0, 125_000, 0.0, 1.0)  # 1 Mbit in 1 s
        assert r.throughput_bps == pytest.approx(1e6)


class TestFlowStats:
    def test_avg_fct(self):
        stats = FlowStats([record(0, 1000, 0, 1), record(1, 1000, 0, 3)])
        assert stats.avg_fct() == pytest.approx(2.0)

    def test_short_long_split(self):
        stats = FlowStats(
            [
                record(0, 50_000, 0.0, 0.001),  # short
                record(1, 500_000, 0.0, 1.0),  # long
            ]
        )
        assert stats.short_flow_p99_fct() == pytest.approx(0.001)
        assert stats.long_flow_avg_throughput_bps() == pytest.approx(500_000 * 8)

    def test_unfinished_excluded_from_metrics(self):
        stats = FlowStats(
            [record(0, 1000, 0, 1), FlowRecord(1, 0, 1, 1000, 0.0)]
        )
        assert stats.num_unfinished == 1
        assert stats.avg_fct() == pytest.approx(1.0)

    def test_empty_metrics_are_nan(self):
        stats = FlowStats([])
        assert math.isnan(stats.avg_fct())
        assert math.isnan(stats.short_flow_p99_fct())
        assert math.isnan(stats.long_flow_avg_throughput_bps())

    def test_boundary_size_counts_as_long(self):
        stats = FlowStats([record(0, 100_000, 0.0, 0.01)])
        assert math.isnan(stats.short_flow_p99_fct())
        assert not math.isnan(stats.long_flow_avg_throughput_bps())

    def test_summary_keys(self):
        stats = FlowStats([record(0, 1000, 0, 1)])
        s = stats.summary()
        assert set(s) == {
            "flows",
            "unfinished",
            "avg_fct_ms",
            "short_p99_fct_ms",
            "long_avg_throughput_gbps",
        }
