"""Tests for the congestion-aware hybrid (paper §6.3) and adaptive ECMP."""

import pytest

from repro.sim import (
    AdaptiveEcmpRouting,
    CongestionHybRouting,
    NetworkParams,
    PacketSimulation,
    run_packet_experiment,
)
from repro.sim.simulation import make_routing
from repro.topologies import xpander
from repro.traffic import FlowSpec

FAST = NetworkParams(link_rate_bps=1e9)


@pytest.fixture(scope="module")
def xp():
    return xpander(4, 6, 4)


class TestCongestionHyb:
    def test_starts_on_ecmp(self, xp):
        r = CongestionHybRouting(xp.graph, ecn_mark_threshold=3)
        assert r.choose_via(1, 10**9, 0, 5) is None

    def test_switches_to_vlb_after_marks(self, xp):
        r = CongestionHybRouting(xp.graph, ecn_mark_threshold=3, seed=1)
        for _ in range(3):
            r.note_ecn(1)
        assert r.choose_via(1, 0, 0, 5) is not None
        # Other flows unaffected.
        assert r.choose_via(2, 0, 0, 5) is None

    def test_flow_done_releases_state(self, xp):
        r = CongestionHybRouting(xp.graph, ecn_mark_threshold=1)
        r.note_ecn(7)
        r.flow_done(7)
        assert r.choose_via(7, 0, 0, 5) is None

    def test_invalid_threshold(self, xp):
        with pytest.raises(ValueError):
            CongestionHybRouting(xp.graph, ecn_mark_threshold=0)

    def test_end_to_end_two_rack_congestion(self, xp):
        # Congested adjacent racks: CHYB should escape to VLB and beat
        # pure ECMP once the direct link saturates.
        u, v = next(iter(xp.graph.edges()))
        su, sv = xp.tor_to_servers()[u], xp.tor_to_servers()[v]
        flows = [
            FlowSpec(i, su[i % 4], sv[(i + 1) % 4], 200_000, 0.0002 * i)
            for i in range(24)
        ]
        ecmp = run_packet_experiment(
            xp, flows, routing="ecmp", measure_start=0.0, measure_end=0.01,
            network_params=FAST,
        )
        chyb = run_packet_experiment(
            xp, flows, routing="chyb", measure_start=0.0, measure_end=0.01,
            network_params=FAST,
        )
        assert chyb.num_unfinished == 0
        assert chyb.avg_fct() < ecmp.avg_fct()


class TestAdaptiveEcmp:
    def test_unbound_falls_back_to_hash(self, xp):
        r = AdaptiveEcmpRouting(xp.graph)
        from repro.sim import Packet

        pkt = Packet(flow_id=1, src_server=0, dst_server=1, dst_tor=0, flowlet=2)
        nh = r.next_hop(max(xp.switches), pkt)
        assert nh in xp.graph.neighbors(max(xp.switches))

    def test_binds_via_simulation(self, xp):
        sim = PacketSimulation(xp, routing="aecmp", network_params=FAST)
        assert sim.routing._switches is not None

    def test_end_to_end_completion(self, xp):
        flows = [FlowSpec(i, i, 70 + i, 50_000, 0.0001 * i) for i in range(8)]
        stats = run_packet_experiment(
            xp, flows, routing="aecmp", measure_start=0.0, measure_end=0.01,
            network_params=FAST,
        )
        assert stats.num_unfinished == 0

    def test_prefers_empty_queue(self, xp):
        # With one candidate's queue loaded, the other must be chosen.
        sim = PacketSimulation(xp, routing="aecmp", network_params=FAST)
        routing = sim.routing
        from repro.sim import Packet

        # Find a switch with >= 2 ECMP choices toward some destination.
        for dst in xp.switches:
            for v in xp.switches:
                choices = routing._tables[dst][v]
                if len(choices) >= 2:
                    loaded, other = choices[0], choices[1]
                    link = sim.network.switches[v].switch_ports[loaded]
                    link._busy = True
                    link._queued_bytes = 10**6
                    pkt = Packet(
                        flow_id=3, src_server=0, dst_server=1, dst_tor=dst
                    )
                    nh = routing.next_hop(v, pkt)
                    assert nh != loaded
                    return
        pytest.skip("no multi-choice ECMP entry found")


class TestMakeRoutingNames:
    @pytest.mark.parametrize("name", ["ecmp", "vlb", "hyb", "chyb", "aecmp"])
    def test_all_names_construct(self, xp, name):
        policy = make_routing(name, xp)
        assert policy.name in ("ecmp", "vlb", "hyb", "chyb", "aecmp", "base")
