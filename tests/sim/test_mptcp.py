"""Tests for the MPTCP-over-k-paths transport (§6 prior-art baseline)."""

import pytest

from repro.sim import NetworkParams, PacketSimulation
from repro.sim.mptcp import MPTCP_SUBFLOW_FACTOR, MptcpFlow
from repro.topologies import xpander
from repro.traffic import FlowSpec

FAST = NetworkParams(link_rate_bps=1e9)


@pytest.fixture(scope="module")
def xp():
    return xpander(4, 6, 2)


def run_mptcp(xp, flows, subflows=4, network_params=FAST):
    sim = PacketSimulation(
        xp,
        routing="ecmp",
        transport="mptcp",
        mptcp_subflows=subflows,
        network_params=network_params,
    )
    sim.inject(flows)
    return sim


class TestBasicOperation:
    def test_flow_completes(self, xp):
        sim = run_mptcp(xp, [FlowSpec(0, 0, 55, 1_000_000, 0.0)])
        stats = sim.run(0.0, 0.01)
        assert stats.num_unfinished == 0

    def test_all_bytes_delivered(self, xp):
        size = 777_777
        sim = run_mptcp(xp, [FlowSpec(0, 0, 55, size, 0.0)])
        sim.run(0.0, 0.01)
        # Every subflow receiver's rcv_nxt sums to the flow size (all
        # receivers are dropped on completion, so check via the record).
        assert sim.records[0].completion_time is not None

    def test_tiny_flow_single_subflow(self, xp):
        sim = run_mptcp(xp, [FlowSpec(0, 0, 55, 500, 0.0)], subflows=4)
        stats = sim.run(0.0, 0.01)
        assert stats.num_unfinished == 0

    def test_subflow_state_released(self, xp):
        sim = run_mptcp(xp, [FlowSpec(0, 0, 55, 100_000, 0.0)])
        sim.run(0.0, 0.01)
        assert not sim.network.hosts[0]._senders
        assert not sim.network.hosts[55]._receivers

    def test_many_concurrent_flows(self, xp):
        flows = [FlowSpec(i, i, 59 - i, 120_000, 0.0001 * i) for i in range(8)]
        sim = run_mptcp(xp, flows)
        stats = sim.run(0.0, 0.01)
        assert stats.num_unfinished == 0


class TestMultipathBenefit:
    def test_beats_single_path_without_server_bottleneck(self, xp):
        # With unconstrained access links, a single 4 MB flow is limited
        # by one network path under DCTCP, but MPTCP's subflows aggregate
        # several paths.  Pick a rack pair with multiple disjoint shortest
        # paths (adjacent racks would pin every subflow to the one direct
        # link).
        import networkx as nx

        src_tor, dst_tor = max(
            (
                (a, b)
                for a in xp.switches
                for b in xp.switches
                if a != b and nx.shortest_path_length(xp.graph, a, b) == 2
            ),
            key=lambda ab: len(list(nx.all_shortest_paths(xp.graph, *ab))),
        )
        t2s = xp.tor_to_servers()
        params = NetworkParams(link_rate_bps=1e9, server_link_rate_bps=None)
        flow = [FlowSpec(0, t2s[src_tor][0], t2s[dst_tor][0], 4_000_000, 0.0)]
        single = PacketSimulation(
            xp, routing="ecmp", transport="dctcp", network_params=params,
        )
        single.inject(flow)
        s1 = single.run(0.0, 0.05)
        multi = run_mptcp(xp, flow, subflows=4, network_params=params)
        s2 = multi.run(0.0, 0.05)
        assert s2.avg_fct() < s1.avg_fct()


class TestValidation:
    def test_invalid_transport_name(self, xp):
        with pytest.raises(ValueError):
            PacketSimulation(xp, transport="bogus")

    def test_invalid_subflow_counts(self, xp):
        sim = PacketSimulation(xp, routing="ecmp", network_params=FAST)
        src = sim.network.hosts[0]
        dst = sim.network.hosts[55]
        from repro.sim import TransportParams

        with pytest.raises(ValueError):
            MptcpFlow(
                sim.engine, TransportParams(), sim.routing, 0, src, dst,
                size_bytes=1000, num_subflows=0,
            )
        with pytest.raises(ValueError):
            MptcpFlow(
                sim.engine, TransportParams(), sim.routing, 0, src, dst,
                size_bytes=1000, num_subflows=MPTCP_SUBFLOW_FACTOR,
            )
        with pytest.raises(ValueError):
            MptcpFlow(
                sim.engine, TransportParams(), sim.routing, 0, src, dst,
                size_bytes=0,
            )
