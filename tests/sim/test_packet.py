"""Tests for the packet model."""

from repro.sim import ACK_BYTES, HEADER_BYTES, MSS, Packet


class TestWireSizes:
    def test_data_packet_includes_header(self):
        p = Packet(flow_id=0, src_server=0, dst_server=1, dst_tor=2, payload=MSS)
        assert p.wire_bytes == MSS + HEADER_BYTES

    def test_ack_fixed_size(self):
        a = Packet(
            flow_id=0, src_server=1, dst_server=0, dst_tor=2, is_ack=True,
            ack_seq=1460,
        )
        assert a.wire_bytes == ACK_BYTES

    def test_small_payload(self):
        p = Packet(flow_id=0, src_server=0, dst_server=1, dst_tor=2, payload=1)
        assert p.wire_bytes == 1 + HEADER_BYTES


class TestFields:
    def test_defaults(self):
        p = Packet(flow_id=3, src_server=0, dst_server=1, dst_tor=2)
        assert p.via_tor is None
        assert not p.ecn_marked
        assert not p.ecn_echo
        assert p.flowlet == 0

    def test_vlb_encapsulation_field(self):
        p = Packet(
            flow_id=3, src_server=0, dst_server=1, dst_tor=2, via_tor=9
        )
        assert p.via_tor == 9
        p.via_tor = None  # decap
        assert p.via_tor is None

    def test_repr_mentions_kind(self):
        p = Packet(flow_id=0, src_server=0, dst_server=1, dst_tor=2, payload=10)
        assert "DATA" in repr(p)
        a = Packet(flow_id=0, src_server=1, dst_server=0, dst_tor=2, is_ack=True)
        assert "ACK" in repr(a)
