"""Tests for source-routed k-shortest-path routing and the duty-cycle model."""

import pytest

from repro.sim import KspRouting, NetworkParams, run_packet_experiment
from repro.topologies import DynamicNetworkModel, duty_cycle, xpander
from repro.traffic import FlowSpec

FAST = NetworkParams(link_rate_bps=1e9)


@pytest.fixture(scope="module")
def xp():
    return xpander(4, 6, 4)


class TestKspRoutes:
    def test_routes_are_valid_paths(self, xp):
        r = KspRouting(xp.graph, k=4)
        src, dst = 0, 15
        for flowlet in range(10):
            route = r.choose_route(1, flowlet, src, dst)
            assert route is not None
            full = [src] + route
            assert full[-1] == dst
            for a, b in zip(full, full[1:]):
                assert xp.graph.has_edge(a, b)

    def test_uses_multiple_paths(self, xp):
        r = KspRouting(xp.graph, k=4, seed=0)
        routes = {
            tuple(r.choose_route(1, fl, 0, 15)) for fl in range(40)
        }
        assert len(routes) > 1

    def test_includes_non_minimal_paths(self, xp):
        # The defining difference from ECMP: k-shortest paths between
        # adjacent racks include multi-hop detours.
        u, v = next(iter(xp.graph.edges()))
        r = KspRouting(xp.graph, k=4)
        lengths = {
            len(r.choose_route(1, fl, u, v) or []) for fl in range(40)
        }
        assert max(lengths) > 1  # something longer than the direct link

    def test_same_rack_no_route(self, xp):
        r = KspRouting(xp.graph, k=2)
        assert r.choose_route(1, 0, 3, 3) is None

    def test_invalid_k(self, xp):
        with pytest.raises(ValueError):
            KspRouting(xp.graph, k=0)


class TestKspEndToEnd:
    def test_flows_complete(self, xp):
        flows = [FlowSpec(i, i, 70 + i, 80_000, 0.0001 * i) for i in range(6)]
        stats = run_packet_experiment(
            xp, flows, routing="ksp", measure_start=0.0, measure_end=0.01,
            network_params=FAST,
        )
        assert stats.num_unfinished == 0

    def test_ksp_beats_ecmp_between_adjacent_racks(self, xp):
        # The §6 claim that motivated MPTCP-over-KSP: extra (non-minimal)
        # paths relieve the adjacent-rack direct-link bottleneck.
        u, v = next(iter(xp.graph.edges()))
        su, sv = xp.tor_to_servers()[u], xp.tor_to_servers()[v]
        flows = [
            FlowSpec(i, su[i % 4], sv[(i + 1) % 4], 200_000, 0.0002 * i)
            for i in range(24)
        ]
        ecmp = run_packet_experiment(
            xp, flows, routing="ecmp", measure_start=0.0, measure_end=0.02,
            network_params=FAST,
        )
        ksp = run_packet_experiment(
            xp, flows, routing="ksp", measure_start=0.0, measure_end=0.02,
            network_params=FAST,
        )
        assert ksp.avg_fct() < ecmp.avg_fct()


class TestDutyCycle:
    def test_projector_90_percent(self):
        # Slot 9x the reconfiguration time -> 90% duty cycle (§4.1).
        assert duty_cycle(9.0, 1.0) == pytest.approx(0.9)

    def test_zero_reconfig_is_full(self):
        assert duty_cycle(1.0, 0.0) == 1.0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            duty_cycle(0.0, 1.0)
        with pytest.raises(ValueError):
            duty_cycle(1.0, -0.5)

    def test_model_integration(self):
        m = DynamicNetworkModel(num_tors=54, network_ports=6, server_ports=6)
        assert m.unrestricted_throughput_with_duty_cycle(9.0, 1.0) == (
            pytest.approx(0.9)
        )
