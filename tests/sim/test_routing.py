"""Tests for ECMP/VLB/HYB routing policies."""

import networkx as nx
import pytest

from repro.sim import EcmpRouting, HybRouting, Packet, VlbRouting
from repro.topologies import xpander


def make_packet(flow=1, flowlet=0, dst_tor=0, via=None):
    return Packet(
        flow_id=flow,
        src_server=0,
        dst_server=1,
        dst_tor=dst_tor,
        flowlet=flowlet,
        via_tor=via,
    )


@pytest.fixture(scope="module")
def graph():
    return xpander(4, 6, 2).graph


class TestEcmpForwarding:
    def test_next_hop_decreases_distance(self, graph):
        routing = EcmpRouting(graph)
        dst = 0
        dist = nx.single_source_shortest_path_length(graph, dst)
        for v in graph.nodes():
            if v == dst:
                continue
            pkt = make_packet(dst_tor=dst)
            nh = routing.next_hop(v, pkt)
            assert dist[nh] == dist[v] - 1

    def test_same_flowlet_same_choice(self, graph):
        routing = EcmpRouting(graph)
        pkt1 = make_packet(flow=9, flowlet=4, dst_tor=0)
        pkt2 = make_packet(flow=9, flowlet=4, dst_tor=0)
        v = max(graph.nodes())
        assert routing.next_hop(v, pkt1) == routing.next_hop(v, pkt2)

    def test_flowlets_spread_over_paths(self, graph):
        routing = EcmpRouting(graph)
        v = max(graph.nodes())
        dst = 0
        choices = {
            routing.next_hop(v, make_packet(flow=1, flowlet=fl, dst_tor=dst))
            for fl in range(64)
        }
        valid = routing._tables[dst][v]
        if len(valid) > 1:
            assert len(choices) > 1
        assert choices <= set(valid)

    def test_ecmp_never_uses_via(self, graph):
        routing = EcmpRouting(graph)
        assert routing.choose_via(1, 0, 0, 5) is None
        assert routing.choose_via(1, 10**9, 0, 5) is None

    def test_delivery_walk_terminates(self, graph):
        # Following next_hop must reach the destination in <= diameter hops.
        routing = EcmpRouting(graph)
        dst = 0
        diameter = nx.diameter(graph)
        for start in list(graph.nodes())[:10]:
            pkt = make_packet(flow=3, flowlet=1, dst_tor=dst)
            v, hops = start, 0
            while v != dst:
                v = routing.next_hop(v, pkt)
                hops += 1
                assert hops <= diameter
        assert True


class TestVlb:
    def test_choose_via_valid(self, graph):
        routing = VlbRouting(graph, seed=1)
        for _ in range(50):
            via = routing.choose_via(1, 0, 0, 5)
            assert via is not None
            assert via not in (0, 5)

    def test_decap_at_intermediate(self, graph):
        routing = VlbRouting(graph, seed=0)
        via = 7
        pkt = make_packet(dst_tor=0, via=via)
        # At the via switch itself, the packet decapsulates and heads to dst.
        nh = routing.next_hop(via, pkt)
        assert pkt.via_tor is None
        dist = nx.single_source_shortest_path_length(graph, 0)
        assert dist[nh] == dist[via] - 1

    def test_routes_toward_via_first(self, graph):
        routing = VlbRouting(graph, seed=0)
        via = 7
        dist_via = nx.single_source_shortest_path_length(graph, via)
        start = max(graph.nodes())
        pkt = make_packet(dst_tor=0, via=via)
        if start != via:
            nh = routing.next_hop(start, pkt)
            assert dist_via[nh] == dist_via[start] - 1

    def test_full_walk_visits_via(self, graph):
        routing = VlbRouting(graph, seed=0)
        dst, via, start = 0, 9, max(graph.nodes())
        pkt = make_packet(dst_tor=dst, via=via)
        v, visited = start, [start]
        while v != dst:
            v = routing.next_hop(v, pkt)
            visited.append(v)
            assert len(visited) < 50
        assert via in visited


class TestHyb:
    def test_ecmp_below_threshold(self, graph):
        routing = HybRouting(graph, q_threshold_bytes=100_000, seed=0)
        assert routing.choose_via(1, 0, 0, 5) is None
        assert routing.choose_via(1, 99_999, 0, 5) is None

    def test_vlb_above_threshold(self, graph):
        routing = HybRouting(graph, q_threshold_bytes=100_000, seed=0)
        vias = [routing.choose_via(1, 100_000 + i, 0, 5) for i in range(20)]
        assert all(v is not None for v in vias)

    def test_zero_threshold_is_pure_vlb(self, graph):
        routing = HybRouting(graph, q_threshold_bytes=0, seed=0)
        assert routing.choose_via(1, 0, 0, 5) is not None

    def test_negative_threshold_rejected(self, graph):
        with pytest.raises(ValueError):
            HybRouting(graph, q_threshold_bytes=-1)
