"""Additional engine behaviors: cancellable args, interleaving, clocks."""

import pytest

from repro.sim import Engine


class TestCancellableWithArgs:
    def test_arg_delivered(self):
        e = Engine()
        got = []
        e.schedule_cancellable(0.1, got.append, "x")
        e.run()
        assert got == ["x"]

    def test_cancel_with_arg(self):
        e = Engine()
        got = []
        h = e.schedule_cancellable(0.1, got.append, "x")
        h.cancel()
        e.run()
        assert got == []

    def test_negative_delay_rejected(self):
        e = Engine()
        with pytest.raises(ValueError):
            e.schedule_cancellable(-1.0, lambda: None)


class TestInterleaving:
    def test_mixed_plain_and_cancellable_order(self):
        e = Engine()
        log = []
        e.schedule(0.2, log.append, "b")
        e.schedule_cancellable(0.1, log.append, "a")
        e.schedule(0.3, log.append, "c")
        e.run()
        assert log == ["a", "b", "c"]

    def test_run_until_exactly_event_time(self):
        e = Engine()
        log = []
        e.schedule(0.5, log.append, 1)
        e.run(until=0.5)
        assert log == [1]

    def test_clock_monotone_across_runs(self):
        e = Engine()
        e.schedule(0.1, lambda: None)
        e.run(until=0.05)
        t1 = e.now
        e.run(until=0.2)
        assert e.now >= t1
