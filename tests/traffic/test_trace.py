"""Tests for flow-trace import/export and statistics."""

import io

import pytest

from repro.topologies import xpander
from repro.traffic import (
    FlowSpec,
    PoissonArrivals,
    Workload,
    a2a_pair_distribution,
    pfabric_web_search,
    projector_like_pair_distribution,
    read_trace,
    trace_stats,
    write_trace,
)


@pytest.fixture()
def flows():
    return [
        FlowSpec(0, 1, 2, 1000, 0.0),
        FlowSpec(1, 2, 3, 50_000, 0.001),
        FlowSpec(2, 3, 1, 2_000_000, 0.0025),
    ]


class TestRoundTrip:
    def test_memory_round_trip(self, flows):
        buf = io.StringIO()
        write_trace(flows, buf)
        buf.seek(0)
        assert read_trace(buf) == flows

    def test_file_round_trip(self, flows, tmp_path):
        path = str(tmp_path / "trace.csv")
        write_trace(flows, path)
        assert read_trace(path) == flows

    def test_float_times_exact(self, tmp_path):
        f = [FlowSpec(0, 1, 2, 10, 0.1234567890123)]
        path = str(tmp_path / "t.csv")
        write_trace(f, path)
        assert read_trace(path)[0].start_time == f[0].start_time

    def test_workload_round_trip(self, tmp_path):
        xp = xpander(4, 5, 2)
        wl = Workload(
            a2a_pair_distribution(xp, 1.0),
            pfabric_web_search(),
            PoissonArrivals(1000.0),
            seed=5,
        )
        generated = wl.generate(num_flows=50)
        path = str(tmp_path / "wl.csv")
        write_trace(generated, path)
        assert read_trace(path) == generated


class TestValidation:
    def test_bad_header(self):
        buf = io.StringIO("a,b,c\n1,2,3\n")
        with pytest.raises(ValueError, match="header"):
            read_trace(buf)

    def test_bad_field_count(self, flows):
        buf = io.StringIO()
        write_trace(flows, buf)
        buf.seek(0)
        content = buf.read() + "1,2,3\n"
        with pytest.raises(ValueError, match="expected 5 fields"):
            read_trace(io.StringIO(content))

    def test_non_numeric(self):
        buf = io.StringIO(
            "flow_id,src_server,dst_server,size_bytes,start_time\nx,1,2,3,0.0\n"
        )
        with pytest.raises(ValueError, match="line 2"):
            read_trace(buf)

    def test_zero_size_rejected(self):
        buf = io.StringIO(
            "flow_id,src_server,dst_server,size_bytes,start_time\n0,1,2,0,0.0\n"
        )
        with pytest.raises(ValueError, match="non-positive"):
            read_trace(buf)

    def test_self_flow_rejected(self):
        buf = io.StringIO(
            "flow_id,src_server,dst_server,size_bytes,start_time\n0,1,1,10,0.0\n"
        )
        with pytest.raises(ValueError, match="identical"):
            read_trace(buf)


class TestTraceStats:
    def test_basic_stats(self, flows):
        stats = trace_stats(flows)
        assert stats.num_flows == 3
        assert stats.total_bytes == 2_051_000
        assert stats.median_size == 50_000
        assert stats.duration == pytest.approx(0.0025)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            trace_stats([])

    def test_projector_like_trace_reproduces_marginals(self):
        """Generate with the ProjecToR-like distribution, then verify the
        trace statistics recover the published skew marginals."""
        xp = xpander(5, 6, 3)  # 36 racks
        wl = Workload(
            projector_like_pair_distribution(xp, seed=3),
            pfabric_web_search(100_000),
            PoissonArrivals(50_000.0),
            seed=4,
        )
        flows = wl.generate(num_flows=4000)
        # The distribution's skew is at rack granularity: remap endpoints
        # to racks before characterizing.
        s2t = xp.server_to_tor()
        rack_flows = [
            FlowSpec(f.flow_id, s2t[f.src_server], s2t[f.dst_server],
                     f.size_bytes, f.start_time)
            for f in flows
        ]
        stats = trace_stats(rack_flows)
        # Hot 4% of rack pairs should carry well over half the bytes
        # (sampling noise keeps it below the nominal 77%).
        assert stats.hot_pair_byte_share > 0.5
        # Many rack pairs exchange nothing (paper: 46-99%).
        assert stats.zero_pair_fraction > 0.3

    def test_rows_render(self, flows):
        rows = trace_stats(flows).as_rows()
        assert any("flows" in str(r[0]) for r in rows)
