"""Tests for traffic patterns: fluid TMs and pair distributions."""

import os
import random
import subprocess
import sys
from collections import Counter

import pytest

import networkx as nx

from repro.topologies import fattree, jellyfish, xpander
from repro.traffic import (
    TrafficMatrixError,
    a2a_pair_distribution,
    all_to_all_tm,
    longest_matching_tm,
    many_to_one_tm,
    one_to_many_tm,
    permutation_tm,
    permute_pair_distribution,
    projector_like_pair_distribution,
    skew_pair_distribution,
)
from repro.traffic.patterns import RackPairDistribution


@pytest.fixture(scope="module")
def xp():
    return xpander(5, 8, 4)  # 48 switches, 4 servers each


class TestPermutationTM:
    def test_each_participant_sends_once(self, xp):
        tm = permutation_tm(xp.tors, 4, fraction=1.0, seed=0, bidirectional=False)
        senders = [s for (s, _) in tm.demands]
        assert len(senders) == len(set(senders))

    def test_each_participant_receives_once(self, xp):
        tm = permutation_tm(xp.tors, 4, fraction=1.0, seed=0, bidirectional=False)
        receivers = [d for (_, d) in tm.demands]
        assert len(receivers) == len(set(receivers))

    def test_hose_feasible(self, xp):
        tm = permutation_tm(xp.tors, 4, fraction=0.6, seed=1)
        tm.validate_hose(xp.servers_per_switch)

    def test_fraction_controls_participants(self, xp):
        tm = permutation_tm(xp.tors, 4, fraction=0.5, seed=0)
        assert len(tm.participants()) == 24

    def test_bidirectional_symmetry(self, xp):
        tm = permutation_tm(xp.tors, 4, fraction=1.0, seed=0)
        for (s, d) in list(tm.demands):
            assert (d, s) in tm.demands

    def test_seed_determinism(self, xp):
        a = permutation_tm(xp.tors, 4, fraction=0.5, seed=3)
        b = permutation_tm(xp.tors, 4, fraction=0.5, seed=3)
        assert a.demands == b.demands

    def test_invalid_fraction(self, xp):
        with pytest.raises(TrafficMatrixError):
            permutation_tm(xp.tors, 4, fraction=0.0)


class TestLongestMatchingTM:
    def test_is_a_matching(self, xp):
        tm = longest_matching_tm(xp, fraction=1.0, seed=0)
        out_counts = Counter(s for (s, _) in tm.demands)
        assert all(c == 1 for c in out_counts.values())

    def test_prefers_distant_pairs(self, xp):
        import networkx as nx

        tm = longest_matching_tm(xp, fraction=1.0, seed=0)
        dist = dict(nx.all_pairs_shortest_path_length(xp.graph))
        matched = [dist[s][d] for (s, d) in tm.demands]
        avg_matched = sum(matched) / len(matched)
        # The matching should be biased toward long distances vs average.
        all_pairs = [
            dist[a][b] for a in xp.tors for b in xp.tors if a != b
        ]
        avg_all = sum(all_pairs) / len(all_pairs)
        assert avg_matched > avg_all

    def test_hose_feasible(self, xp):
        tm = longest_matching_tm(xp, fraction=0.5, seed=2)
        tm.validate_hose(xp.servers_per_switch)

    def test_demand_respects_server_counts(self, xp):
        tm = longest_matching_tm(xp, fraction=0.25, seed=0)
        for (_, _), v in tm.demands.items():
            assert v == 4.0


class TestAllToAllTM:
    def test_saturates_hose_exactly(self, xp):
        tm = all_to_all_tm(xp.tors, 4, fraction=0.5, seed=0)
        for t in tm.participants():
            assert tm.egress(t) == pytest.approx(4.0)
            assert tm.ingress(t) == pytest.approx(4.0)

    def test_pair_count(self, xp):
        tm = all_to_all_tm(xp.tors, 4, fraction=0.25, seed=0)
        n = len(tm.participants())
        assert tm.num_flows == n * (n - 1)


class TestManyToOneOneToMany:
    def test_many_to_one_sink_hose(self, xp):
        tm = many_to_one_tm(xp.tors, 4, fraction=0.5, seed=1)
        tm.validate_hose(xp.servers_per_switch)
        sinks = {d for (_, d) in tm.demands}
        assert len(sinks) == 1

    def test_one_to_many_source_hose(self, xp):
        tm = one_to_many_tm(xp.tors, 4, fraction=0.5, seed=1)
        tm.validate_hose(xp.servers_per_switch)
        sources = {s for (s, _) in tm.demands}
        assert len(sources) == 1


class TestRackPairDistribution:
    def test_samples_respect_zero_weights(self, xp):
        tors = xp.tors
        t2s = xp.tor_to_servers()
        weights = {(tors[0], tors[1]): 1.0, (tors[2], tors[3]): 0.0}
        with pytest.raises(TrafficMatrixError):
            RackPairDistribution({}, t2s)
        dist = RackPairDistribution(weights, t2s)
        rng = random.Random(0)
        s2t = xp.server_to_tor()
        for _ in range(200):
            s, d = dist.sample_pair(rng)
            assert (s2t[s], s2t[d]) == (tors[0], tors[1])

    def test_weight_proportionality(self, xp):
        tors = xp.tors
        dist = RackPairDistribution(
            {(tors[0], tors[1]): 3.0, (tors[1], tors[0]): 1.0},
            xp.tor_to_servers(),
        )
        rng = random.Random(1)
        s2t = xp.server_to_tor()
        counts = Counter(
            (s2t[dist.sample_pair(rng)[0]]) for _ in range(4000)
        )
        ratio = counts[tors[0]] / counts[tors[1]]
        assert 2.4 < ratio < 3.8

    def test_negative_weight_rejected(self, xp):
        with pytest.raises(TrafficMatrixError):
            RackPairDistribution(
                {(xp.tors[0], xp.tors[1]): -1.0}, xp.tor_to_servers()
            )

    def test_rack_without_servers_rejected(self):
        ft = fattree(4)
        core = 0  # core switches have no servers
        edge = ft.topology.tors[0]
        with pytest.raises(TrafficMatrixError):
            RackPairDistribution({(core, edge): 1.0}, ft.topology.tor_to_servers())


class TestA2APermuteDistributions:
    def test_a2a_active_rack_count(self, xp):
        dist = a2a_pair_distribution(xp, 0.25, seed=0)
        assert len(dist.active_racks()) == 12

    def test_a2a_take_first_uses_prefix(self):
        ft = fattree(4).topology
        dist = a2a_pair_distribution(ft, 0.5, take_first=True)
        assert dist.active_racks() == ft.tors[:4]

    def test_permute_is_rack_matching(self, xp):
        dist = permute_pair_distribution(xp, 0.5, seed=0)
        pairs = [p for p, w in dist.pair_weights.items() if w > 0]
        out = Counter(s for s, _ in pairs)
        assert all(c == 1 for c in out.values())

    def test_permute_bidirectional(self, xp):
        dist = permute_pair_distribution(xp, 0.5, seed=0)
        for (a, b) in dist.pair_weights:
            assert (b, a) in dist.pair_weights


class TestSkewDistribution:
    def test_hot_racks_get_most_traffic(self, xp):
        dist = skew_pair_distribution(xp, theta=0.1, phi=0.9, seed=0)
        rng = random.Random(0)
        s2t = xp.server_to_tor()
        rack_hits = Counter()
        for _ in range(5000):
            s, d = dist.sample_pair(rng)
            rack_hits[s2t[s]] += 1
            rack_hits[s2t[d]] += 1
        hot_count = max(1, round(0.1 * len(xp.tors)))
        top = [r for r, _ in rack_hits.most_common(hot_count)]
        top_share = sum(rack_hits[r] for r in top) / sum(rack_hits.values())
        assert top_share > 0.6

    def test_invalid_parameters(self, xp):
        with pytest.raises(TrafficMatrixError):
            skew_pair_distribution(xp, theta=0.0, phi=0.5)
        with pytest.raises(TrafficMatrixError):
            skew_pair_distribution(xp, theta=0.5, phi=1.5)


class TestProjectorLikeDistribution:
    def test_hot_pairs_carry_target_fraction(self, xp):
        dist = projector_like_pair_distribution(
            xp, hot_pair_fraction=0.04, hot_byte_fraction=0.77, seed=0
        )
        weights = sorted(dist.pair_weights.values(), reverse=True)
        n_pairs = len(xp.tors) * (len(xp.tors) - 1)
        n_hot = max(1, round(0.04 * n_pairs))
        hot_share = sum(weights[:n_hot]) / sum(weights)
        assert hot_share == pytest.approx(0.77, abs=0.02)

    def test_many_pairs_zero(self, xp):
        dist = projector_like_pair_distribution(xp, zero_pair_fraction=0.6, seed=0)
        n_pairs = len(xp.tors) * (len(xp.tors) - 1)
        nonzero = len(dist.pair_weights)
        assert nonzero <= 0.45 * n_pairs


class TestLongestMatchingDispatch:
    """Exact below LONGEST_MATCHING_EXACT_MAX active ToRs, greedy above."""

    def test_small_instances_use_exact_matching(self, monkeypatch):
        from repro.traffic import patterns

        calls = []
        real = patterns._exact_longest_matching
        monkeypatch.setattr(
            patterns,
            "_exact_longest_matching",
            lambda topo, active: calls.append(len(active)) or real(topo, active),
        )
        topo = jellyfish(20, 4, 2, seed=0)
        longest_matching_tm(topo, 1.0, seed=1)
        assert calls == [20]

    def test_greedy_kicks_in_above_threshold(self, monkeypatch):
        from repro.traffic import patterns

        monkeypatch.setattr(patterns, "LONGEST_MATCHING_EXACT_MAX", 8)
        exact_calls = []
        monkeypatch.setattr(
            patterns,
            "_exact_longest_matching",
            lambda topo, active: exact_calls.append(1),
        )
        topo = jellyfish(20, 4, 2, seed=0)
        tm = longest_matching_tm(topo, 1.0, seed=1)
        assert not exact_calls
        assert tm.num_flows == 20  # perfect pairing, both directions
        tm.validate_hose({t: topo.servers_at(t) for t in topo.tors})

    def test_greedy_pairs_are_long(self):
        """The greedy pairing keeps the pattern's point: pairs sit near
        the diameter, not adjacent."""
        from repro.traffic.patterns import _greedy_longest_matching

        topo = jellyfish(40, 4, 2, seed=0)
        pairs = _greedy_longest_matching(topo, list(topo.tors))
        assert len(pairs) == 20
        dists = [
            nx.shortest_path_length(topo.graph, a, b) for a, b in pairs
        ]
        diameter = nx.diameter(topo.graph)
        assert max(dists) == diameter
        assert sum(dists) / len(dists) >= diameter - 1


class TestTmDeterminism:
    """Property tests: TM generation is a pure function of its inputs —
    byte-identical across processes and hash seeds, and always
    hose-valid."""

    SCRIPT = """
import hashlib, json, sys
from repro.topologies import jellyfish
from repro.traffic import patterns
from repro.traffic import all_to_all_tm, longest_matching_tm, permutation_tm

which = sys.argv[1]
topo = jellyfish(30, 4, 2, seed=7)
if which == "longest-greedy":
    patterns.LONGEST_MATCHING_EXACT_MAX = 8
    tm = longest_matching_tm(topo, 1.0, seed=3)
elif which == "longest-exact":
    tm = longest_matching_tm(topo, 1.0, seed=3)
elif which == "permutation":
    tm = permutation_tm(topo.tors, 2, fraction=0.8, seed=3)
else:
    tm = all_to_all_tm(topo.tors, 2, fraction=0.8, seed=3)
blob = json.dumps([[s, d, v] for (s, d), v in tm.items()])
print(hashlib.sha256(blob.encode()).hexdigest())
"""

    @pytest.mark.parametrize(
        "which", ["longest-exact", "longest-greedy", "permutation", "all-to-all"]
    )
    def test_cross_process_byte_identity(self, which):
        digests = set()
        for hashseed in ("0", "1", "42"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed)
            env["PYTHONPATH"] = os.pathsep.join(
                [p for p in (env.get("PYTHONPATH"),) if p] + ["src"]
            )
            out = subprocess.run(
                [sys.executable, "-c", self.SCRIPT, which],
                capture_output=True, text=True, env=env,
                cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
                check=True,
            )
            digests.add(out.stdout.strip())
        assert len(digests) == 1, f"{which} digests diverged: {digests}"

    @pytest.mark.parametrize("i", range(8))
    def test_random_instances_are_hose_valid_and_symmetric(self, i):
        rng = random.Random(1000 + i)
        if i % 2 == 0:
            sw, deg = rng.randint(10, 30), 4
            topo = jellyfish(sw, deg, rng.randint(1, 3), seed=rng.randint(0, 99))
        else:
            topo = xpander(4, 6, rng.randint(1, 3), seed=rng.randint(0, 99))
        frac = rng.choice([0.5, 0.8, 1.0])
        tm = longest_matching_tm(topo, frac, seed=rng.randint(0, 99))
        tm.validate_hose({t: topo.servers_at(t) for t in topo.tors})
        for (s, d), v in tm.items():
            assert tm.demands[(d, s)] == v  # both directions, equal load

    def test_greedy_determinism_in_process(self, monkeypatch):
        from repro.traffic import patterns

        monkeypatch.setattr(patterns, "LONGEST_MATCHING_EXACT_MAX", 8)
        topo = jellyfish(30, 4, 2, seed=7)
        a = longest_matching_tm(topo, 1.0, seed=3)
        b = longest_matching_tm(topo, 1.0, seed=3)
        assert list(a.items()) == list(b.items())
