"""Tests for workload generation."""

import pytest

from repro.topologies import xpander
from repro.traffic import (
    DeterministicArrivals,
    PoissonArrivals,
    Workload,
    a2a_pair_distribution,
    pfabric_web_search,
)


@pytest.fixture(scope="module")
def workload():
    xp = xpander(4, 6, 3)
    return Workload(
        pairs=a2a_pair_distribution(xp, 1.0),
        sizes=pfabric_web_search(),
        arrivals=PoissonArrivals(5000.0),
        seed=42,
    )


class TestGeneration:
    def test_num_flows_limit(self, workload):
        flows = workload.generate(num_flows=137)
        assert len(flows) == 137

    def test_horizon_limit(self, workload):
        flows = workload.generate(horizon=0.05)
        assert all(f.start_time < 0.05 for f in flows)
        # Around 5000 * 0.05 = 250 flows.
        assert 150 < len(flows) < 400

    def test_exactly_one_limit_required(self, workload):
        with pytest.raises(ValueError):
            workload.generate()
        with pytest.raises(ValueError):
            workload.generate(num_flows=10, horizon=1.0)

    def test_flow_ids_dense(self, workload):
        flows = workload.generate(num_flows=50)
        assert [f.flow_id for f in flows] == list(range(50))

    def test_times_monotone(self, workload):
        flows = workload.generate(num_flows=200)
        times = [f.start_time for f in flows]
        assert times == sorted(times)

    def test_no_self_flows(self, workload):
        flows = workload.generate(num_flows=500)
        assert all(f.src_server != f.dst_server for f in flows)

    def test_sizes_positive(self, workload):
        flows = workload.generate(num_flows=200)
        assert all(f.size_bytes >= 1 for f in flows)


class TestReproducibility:
    def test_same_seed_same_flows(self, workload):
        a = workload.generate(num_flows=100)
        b = workload.generate(num_flows=100)
        assert a == b

    def test_different_seed_differs(self):
        xp = xpander(4, 6, 3)
        base = dict(
            pairs=a2a_pair_distribution(xp, 1.0),
            sizes=pfabric_web_search(),
            arrivals=PoissonArrivals(5000.0),
        )
        a = Workload(seed=1, **base).generate(num_flows=50)
        b = Workload(seed=2, **base).generate(num_flows=50)
        assert a != b

    def test_deterministic_arrivals_supported(self):
        xp = xpander(4, 6, 3)
        w = Workload(
            a2a_pair_distribution(xp, 1.0),
            pfabric_web_search(),
            DeterministicArrivals(100.0),
            seed=0,
        )
        flows = w.generate(num_flows=3)
        assert [f.start_time for f in flows] == pytest.approx([0.01, 0.02, 0.03])
