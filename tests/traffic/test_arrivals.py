"""Tests for arrival processes."""

import itertools
import random

import pytest

from repro.traffic import DeterministicArrivals, PoissonArrivals


class TestPoisson:
    def test_rate_recovered(self):
        p = PoissonArrivals(1000.0)
        rng = random.Random(0)
        times = list(itertools.islice(p.iter_times(rng), 20_000))
        measured_rate = len(times) / times[-1]
        assert measured_rate == pytest.approx(1000.0, rel=0.05)

    def test_monotone(self):
        p = PoissonArrivals(50.0)
        rng = random.Random(1)
        times = list(itertools.islice(p.iter_times(rng), 500))
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_exponential_gaps(self):
        # CV of exponential inter-arrivals is 1.
        p = PoissonArrivals(100.0)
        rng = random.Random(2)
        times = list(itertools.islice(p.iter_times(rng), 20_000))
        gaps = [b - a for a, b in zip(times, times[1:])]
        mean = sum(gaps) / len(gaps)
        var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
        cv = var**0.5 / mean
        assert cv == pytest.approx(1.0, abs=0.05)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0)


class TestDeterministic:
    def test_even_spacing(self):
        d = DeterministicArrivals(10.0)
        rng = random.Random(0)
        times = list(itertools.islice(d.iter_times(rng), 5))
        assert times == pytest.approx([0.1, 0.2, 0.3, 0.4, 0.5])

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            DeterministicArrivals(-1.0)
