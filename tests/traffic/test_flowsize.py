"""Tests for flow-size distributions (Fig 8)."""

import random

import pytest

from repro.traffic import EmpiricalCDF, ParetoFlowSizes, pareto_hull, pfabric_web_search


class TestEmpiricalCDF:
    def test_mean_matches_target(self):
        d = pfabric_web_search()
        assert d.mean() == pytest.approx(2_400_000, rel=1e-9)

    def test_sample_mean_converges(self):
        d = pfabric_web_search()
        rng = random.Random(0)
        samples = [d.sample(rng) for _ in range(30_000)]
        assert sum(samples) / len(samples) == pytest.approx(2_400_000, rel=0.05)

    def test_cdf_monotone(self):
        d = pfabric_web_search()
        xs = [1e3, 1e4, 1e5, 1e6, 1e7, 1e8]
        values = [d.cdf(x) for x in xs]
        assert values == sorted(values)
        assert d.cdf(0) == 0.0
        assert d.cdf(1e12) == 1.0

    def test_sample_within_support(self):
        d = pfabric_web_search()
        rng = random.Random(1)
        for _ in range(1000):
            s = d.sample(rng)
            assert 1 <= s <= d._sizes[-1] + 1

    def test_inverse_transform_consistency(self):
        # P(X <= median sample) should be near 0.5.
        d = pfabric_web_search()
        rng = random.Random(2)
        samples = sorted(d.sample(rng) for _ in range(10_001))
        median = samples[5000]
        assert d.cdf(median) == pytest.approx(0.5, abs=0.03)

    def test_scaled_to_mean(self):
        d = pfabric_web_search().scaled_to_mean(100_000)
        assert d.mean() == pytest.approx(100_000, rel=1e-9)

    def test_invalid_points_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalCDF([(10, 0.5)])
        with pytest.raises(ValueError):
            EmpiricalCDF([(10, 0.5), (5, 1.0)])  # sizes decrease
        with pytest.raises(ValueError):
            EmpiricalCDF([(10, 0.5), (20, 0.4)])  # probs decrease
        with pytest.raises(ValueError):
            EmpiricalCDF([(10, 0.0), (20, 0.9)])  # does not reach 1


class TestParetoHull:
    def test_untruncated_mean_exact(self):
        d = ParetoFlowSizes(shape=1.05, mean_bytes=100_000, cap_bytes=None)
        assert d.mean() == pytest.approx(100_000, rel=1e-9)

    def test_shape_preserving_percentiles(self):
        # Paper Fig 8: 90th percentile of Pareto-HULL < 100 KB.
        d = pareto_hull()
        rng = random.Random(0)
        samples = sorted(d.sample(rng) for _ in range(20_000))
        p90 = samples[int(0.9 * len(samples))]
        assert p90 < 100_000

    def test_cap_enforced(self):
        d = pareto_hull(cap_bytes=1_000_000)
        rng = random.Random(3)
        assert all(d.sample(rng) <= 1_000_000 for _ in range(5000))

    def test_mean_preserving_mode(self):
        d = ParetoFlowSizes(
            shape=1.05, mean_bytes=100_000, cap_bytes=10_000_000, preserve="mean"
        )
        assert d.mean() == pytest.approx(100_000, rel=1e-3)

    def test_cdf_properties(self):
        d = pareto_hull()
        assert d.cdf(0) == 0.0
        assert d.cdf(d.scale) == pytest.approx(0.0, abs=1e-9)
        assert d.cdf(1e12) == 1.0
        assert 0 < d.cdf(50_000) < 1

    def test_most_flows_short(self):
        # The HULL workload is dominated by short flows.
        d = pareto_hull()
        assert d.cdf(100_000) > 0.9

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            ParetoFlowSizes(shape=1.0)

    def test_invalid_preserve_rejected(self):
        with pytest.raises(ValueError):
            ParetoFlowSizes(preserve="bogus")


class TestPaperContrast:
    def test_web_search_much_heavier_than_hull(self):
        # Fig 8's point: web search mean ~2.4MB vs HULL's ~100KB nominal.
        ws = pfabric_web_search()
        hull = pareto_hull(cap_bytes=None)
        assert ws.mean() > 20 * hull.mean()
