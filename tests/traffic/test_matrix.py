"""Tests for TrafficMatrix."""

import pytest

from repro.traffic import TrafficMatrix, TrafficMatrixError


class TestConstruction:
    def test_basic(self):
        tm = TrafficMatrix({(0, 1): 2.0, (1, 0): 1.0})
        assert tm.num_flows == 2
        assert tm.total_demand == 3.0

    def test_self_demand_rejected(self):
        with pytest.raises(TrafficMatrixError, match="self-demand"):
            TrafficMatrix({(3, 3): 1.0})

    def test_nonpositive_demand_rejected(self):
        with pytest.raises(TrafficMatrixError):
            TrafficMatrix({(0, 1): 0.0})
        with pytest.raises(TrafficMatrixError):
            TrafficMatrix({(0, 1): -2.0})

    def test_empty_is_valid(self):
        tm = TrafficMatrix({})
        assert tm.num_flows == 0
        assert tm.participants() == set()


class TestAccounting:
    def test_egress_ingress(self):
        tm = TrafficMatrix({(0, 1): 2.0, (0, 2): 1.0, (2, 0): 4.0})
        assert tm.egress(0) == 3.0
        assert tm.ingress(0) == 4.0
        assert tm.egress(1) == 0.0
        assert tm.ingress(1) == 2.0

    def test_participants(self):
        tm = TrafficMatrix({(0, 1): 1.0, (5, 9): 1.0})
        assert tm.participants() == {0, 1, 5, 9}


class TestHoseValidation:
    def test_within_hose_passes(self):
        tm = TrafficMatrix({(0, 1): 4.0, (1, 0): 4.0})
        tm.validate_hose({0: 4, 1: 4})

    def test_egress_violation(self):
        tm = TrafficMatrix({(0, 1): 5.0})
        with pytest.raises(TrafficMatrixError, match="egress"):
            tm.validate_hose({0: 4, 1: 8})

    def test_ingress_violation(self):
        tm = TrafficMatrix({(0, 2): 3.0, (1, 2): 3.0})
        with pytest.raises(TrafficMatrixError, match="ingress"):
            tm.validate_hose({0: 4, 1: 4, 2: 4})

    def test_missing_tor_counts_as_zero(self):
        tm = TrafficMatrix({(0, 1): 1.0})
        with pytest.raises(TrafficMatrixError):
            tm.validate_hose({0: 4})

    def test_float_noise_tolerated(self):
        per_pair = 4.0 / 3.0
        tm = TrafficMatrix({(0, i): per_pair for i in (1, 2, 3)})
        tm.validate_hose({0: 4, 1: 4, 2: 4, 3: 4})


class TestTransforms:
    def test_scaled(self):
        tm = TrafficMatrix({(0, 1): 2.0}).scaled(0.5)
        assert tm.demands[(0, 1)] == 1.0

    def test_scaled_invalid_factor(self):
        with pytest.raises(TrafficMatrixError):
            TrafficMatrix({(0, 1): 1.0}).scaled(0.0)

    def test_restricted_to_pairs(self):
        tm = TrafficMatrix({(0, 1): 1.0, (1, 2): 1.0, (2, 0): 1.0})
        sub = tm.restricted_to_pairs([(0, 1), (2, 0)])
        assert set(sub.demands) == {(0, 1), (2, 0)}

    def test_items_sorted(self):
        tm = TrafficMatrix({(3, 1): 1.0, (0, 2): 1.0})
        assert [k for k, _ in tm.items()] == [(0, 2), (3, 1)]


class TestHoseValidationScaling:
    """Regression: validation is one scan of the demands, not a rescan
    per participant (which made 10k-flow TMs quadratic to validate)."""

    def test_one_pass_never_calls_per_tor_accessors(self, monkeypatch):
        n = 200  # all-to-all: ~40k flows, 200 participants
        tm = TrafficMatrix(
            {(s, d): 1.0 / (n - 1) for s in range(n) for d in range(n) if s != d}
        )
        assert tm.num_flows > 10_000

        def forbidden(self, tor):  # pragma: no cover - fails the test if hit
            raise AssertionError("validate_hose must not rescan per ToR")

        monkeypatch.setattr(TrafficMatrix, "egress", forbidden)
        monkeypatch.setattr(TrafficMatrix, "ingress", forbidden)
        tm.validate_hose({t: 1 for t in range(n)})

    def test_first_violation_is_deterministic(self):
        # ToR 7 violates egress AND ToR 3 violates ingress: smallest id
        # wins, so the error names ToR 3's ingress.
        tm = TrafficMatrix({(7, 3): 5.0, (8, 3): 5.0})
        with pytest.raises(TrafficMatrixError, match="ToR 3 ingress"):
            tm.validate_hose({3: 4, 7: 100, 8: 100})
