"""Tests for the flow-level simulator."""

import pytest

from repro.flowsim import FlowLevelSimulation, run_flow_experiment
from repro.topologies import fattree, xpander
from repro.traffic import FlowSpec


@pytest.fixture(scope="module")
def ft():
    return fattree(4).topology


class TestSingleFlow:
    def test_fct_is_serialization_time(self, ft):
        flows = [FlowSpec(0, 0, 15, 1_000_000, 0.0)]
        stats = run_flow_experiment(ft, flows, link_rate_bps=1e9)
        # One flow at line rate: FCT = size * 8 / rate exactly.
        assert stats.records[0].fct == pytest.approx(8e-3)

    def test_server_link_bottleneck(self, ft):
        flows = [FlowSpec(0, 0, 15, 1_000_000, 0.0)]
        stats = run_flow_experiment(
            ft, flows, link_rate_bps=10e9, server_link_rate_bps=1e9
        )
        assert stats.records[0].fct == pytest.approx(8e-3)

    def test_unconstrained_server_links(self, ft):
        flows = [FlowSpec(0, 0, 15, 1_000_000, 0.0)]
        stats = run_flow_experiment(
            ft, flows, link_rate_bps=1e9, server_link_rate_bps=None
        )
        assert stats.records[0].fct == pytest.approx(8e-3)


class TestSharing:
    def test_two_flows_same_bottleneck(self, ft):
        # Both flows leave server 0: its access link is the bottleneck.
        flows = [
            FlowSpec(0, 0, 15, 1_000_000, 0.0),
            FlowSpec(1, 0, 14, 1_000_000, 0.0),
        ]
        stats = run_flow_experiment(ft, flows, link_rate_bps=1e9)
        fcts = sorted(r.fct for r in stats.records)
        # Shared at 0.5 Gbps until the first finishes: both around 16ms/12ms.
        assert fcts[0] == pytest.approx(16e-3, rel=0.05)

    def test_serial_flows_do_not_interact(self, ft):
        flows = [
            FlowSpec(0, 0, 15, 125_000, 0.0),  # done at 1ms
            FlowSpec(1, 0, 15, 125_000, 0.005),
        ]
        stats = run_flow_experiment(ft, flows, link_rate_bps=1e9)
        for r in stats.records:
            assert r.fct == pytest.approx(1e-3)


class TestRoutingModes:
    @pytest.mark.parametrize("routing", ["ecmp", "vlb", "hyb"])
    def test_all_modes_complete(self, ft, routing):
        flows = [FlowSpec(i, i, 15 - i, 500_000, 0.0) for i in range(4)]
        stats = run_flow_experiment(ft, flows, routing=routing, link_rate_bps=1e9)
        assert stats.num_unfinished == 0

    def test_invalid_routing_rejected(self, ft):
        with pytest.raises(ValueError):
            FlowLevelSimulation(ft, routing="bogus")

    def test_hyb_short_flows_take_shortest_path(self):
        # In HYB mode flows under Q go via ECMP (no detour): on an
        # adjacent-rack pair the fluid FCT equals the direct-path time.
        xp = xpander(3, 4, 2)
        u, v = next(iter(xp.graph.edges()))
        servers_u = xp.tor_to_servers()[u]
        servers_v = xp.tor_to_servers()[v]
        flows = [FlowSpec(0, servers_u[0], servers_v[0], 50_000, 0.0)]
        stats = run_flow_experiment(xp, flows, routing="hyb", link_rate_bps=1e9)
        assert stats.records[0].fct == pytest.approx(50_000 * 8 / 1e9)


class TestMeasurementWindow:
    def test_window_filtering(self, ft):
        flows = [
            FlowSpec(0, 0, 15, 10_000, 0.0),
            FlowSpec(1, 1, 14, 10_000, 0.02),
        ]
        stats = run_flow_experiment(
            ft, flows, measure_start=0.01, measure_end=0.03, link_rate_bps=1e9
        )
        assert stats.num_flows == 1
        assert stats.records[0].flow_id == 1


class TestAgreementWithPacketSim:
    def test_uncongested_fct_close_to_packet_level(self, ft):
        # On an idle network the fluid FCT should be a tight lower bound
        # on the packet simulator's (which adds slow start + RTT).
        from repro.sim import NetworkParams, run_packet_experiment

        flows = [FlowSpec(0, 0, 15, 2_000_000, 0.0)]
        fluid = run_flow_experiment(ft, flows, link_rate_bps=1e9)
        packet = run_packet_experiment(
            ft, flows, routing="ecmp", measure_start=0.0, measure_end=0.01,
            network_params=NetworkParams(link_rate_bps=1e9, server_link_rate_bps=1e9),
        )
        assert fluid.avg_fct() <= packet.avg_fct()
        assert packet.avg_fct() < 2.0 * fluid.avg_fct()
