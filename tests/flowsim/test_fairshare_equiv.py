"""Property test: vectorized max-min allocation matches the reference.

Covers ~50 randomized instances, including VLB-style double-traversal
paths (an arc appearing twice in one flow's path) and empty paths
(same-switch endpoints, infinite rate).
"""

import random

import pytest

from repro.flowsim import (
    FairShareState,
    max_min_allocation,
    max_min_allocation_reference,
)


def random_instance(rng):
    """A random capacitated arc set plus flows pinned to random paths."""
    n_nodes = rng.randint(3, 10)
    arcs = []
    capacities = {}
    for u in range(n_nodes):
        for v in range(n_nodes):
            if u != v and rng.random() < 0.5:
                arcs.append((u, v))
                capacities[(u, v)] = rng.choice([0.5, 1.0, 2.0, 5.0, 10.0])
    flow_paths = {}
    n_flows = rng.randint(1, 20)
    for fid in range(n_flows):
        style = rng.random()
        if style < 0.1 or not arcs:
            flow_paths[fid] = []  # same-switch flow: infinite rate
        elif style < 0.3:
            # VLB-style detour: an arc traversed twice in one path.
            arc = rng.choice(arcs)
            extra = [rng.choice(arcs) for _ in range(rng.randint(0, 2))]
            flow_paths[fid] = [arc] + extra + [arc]
        else:
            flow_paths[fid] = [
                rng.choice(arcs) for _ in range(rng.randint(1, 4))
            ]
    return flow_paths, capacities


@pytest.mark.parametrize("seed", range(50))
def test_vectorized_matches_reference(seed):
    rng = random.Random(seed)
    flow_paths, capacities = random_instance(rng)
    ref = max_min_allocation_reference(flow_paths, capacities)
    vec = max_min_allocation(flow_paths, capacities)
    assert set(ref) == set(vec)
    for fid in ref:
        if ref[fid] == float("inf"):
            assert vec[fid] == float("inf")
        else:
            assert vec[fid] == pytest.approx(ref[fid], abs=1e-9)


@pytest.mark.parametrize("seed", range(10))
def test_incremental_state_matches_batch(seed):
    """FairShareState under churn equals batch allocation of the snapshot."""
    rng = random.Random(1000 + seed)
    flow_paths, capacities = random_instance(rng)
    state = FairShareState(capacities)
    live = {}
    for fid, path in flow_paths.items():
        state.add_flow(fid, path)
        live[fid] = path
    # Random departures interleaved with rate queries.
    for fid in sorted(live)[:: 2]:
        state.remove_flow(fid)
        del live[fid]
        expected = max_min_allocation_reference(live, capacities)
        got = state.rates()
        assert set(got) == set(expected)
        for f in expected:
            if expected[f] == float("inf"):
                assert got[f] == float("inf")
            else:
                assert got[f] == pytest.approx(expected[f], abs=1e-9)


def test_unknown_arc_raises():
    with pytest.raises(KeyError):
        max_min_allocation({0: [(0, 1)]}, {})
    state = FairShareState({})
    with pytest.raises(KeyError):
        state.add_flow(0, [(0, 1)])


def test_state_duplicate_and_missing_flow():
    state = FairShareState({(0, 1): 1.0})
    state.add_flow("a", [(0, 1)])
    with pytest.raises(ValueError):
        state.add_flow("a", [(0, 1)])
    with pytest.raises(KeyError):
        state.remove_flow("nope")
    assert len(state) == 1
