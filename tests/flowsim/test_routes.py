"""Tests for the flow-level simulator's route sampler."""

import networkx as nx
import pytest

from repro.flowsim.simulator import _Routes
from repro.topologies import xpander


@pytest.fixture(scope="module")
def xp():
    return xpander(4, 6, 2)


class TestShortestSampler:
    def test_path_is_shortest(self, xp):
        r = _Routes(xp, seed=0)
        dist = dict(nx.all_pairs_shortest_path_length(xp.graph))
        for a in xp.switches[:5]:
            for b in xp.switches[-5:]:
                if a == b:
                    continue
                p = r.shortest(a, b)
                assert len(p) - 1 == dist[a][b]
                assert p[0] == a and p[-1] == b

    def test_same_node(self, xp):
        r = _Routes(xp, seed=0)
        assert r.shortest(3, 3) == [3]

    def test_uses_path_diversity(self, xp):
        r = _Routes(xp, seed=1)
        # A pair at distance >= 2 should eventually sample several paths.
        dist = dict(nx.all_pairs_shortest_path_length(xp.graph))
        pair = next(
            (a, b)
            for a in xp.switches
            for b in xp.switches
            if dist[a][b] == 2
            and len(list(nx.all_shortest_paths(xp.graph, a, b))) > 1
        )
        paths = {tuple(r.shortest(*pair)) for _ in range(50)}
        assert len(paths) > 1


class TestVlbSampler:
    def test_path_valid(self, xp):
        r = _Routes(xp, seed=2)
        for _ in range(30):
            p = r.vlb(0, 10)
            assert p[0] == 0 and p[-1] == 10
            for u, v in zip(p, p[1:]):
                assert xp.graph.has_edge(u, v)

    def test_longer_on_average_than_shortest(self, xp):
        r = _Routes(xp, seed=3)
        direct = [len(r.shortest(0, 10)) for _ in range(50)]
        detour = [len(r.vlb(0, 10)) for _ in range(50)]
        assert sum(detour) / len(detour) > sum(direct) / len(direct)

    def test_same_node(self, xp):
        r = _Routes(xp, seed=0)
        assert r.vlb(5, 5) == [5]
