"""Tests for max-min fair allocation."""

import pytest

from repro.flowsim import max_min_allocation


class TestBasicSharing:
    def test_equal_split_on_shared_link(self):
        rates = max_min_allocation(
            {1: [(0, 1)], 2: [(0, 1)]}, {(0, 1): 10.0}
        )
        assert rates == {1: 5.0, 2: 5.0}

    def test_bottlenecked_flow_releases_capacity(self):
        rates = max_min_allocation(
            {1: [(0, 1)], 2: [(0, 1), (1, 2)]},
            {(0, 1): 10.0, (1, 2): 3.0},
        )
        assert rates[2] == pytest.approx(3.0)
        assert rates[1] == pytest.approx(7.0)

    def test_disjoint_flows_full_rate(self):
        rates = max_min_allocation(
            {1: [(0, 1)], 2: [(2, 3)]}, {(0, 1): 4.0, (2, 3): 9.0}
        )
        assert rates == {1: 4.0, 2: 9.0}

    def test_three_level_waterfill(self):
        # Classic example: flows a (link1), b (link1+link2), c (link2).
        rates = max_min_allocation(
            {"a": [(0, 1)], "b": [(0, 1), (1, 2)], "c": [(1, 2)]},
            {(0, 1): 10.0, (1, 2): 4.0},
        )
        assert rates["b"] == pytest.approx(2.0)
        assert rates["c"] == pytest.approx(2.0)
        assert rates["a"] == pytest.approx(8.0)


class TestInvariants:
    def test_no_link_oversubscribed(self):
        paths = {
            i: [(0, 1), (1, 2)] if i % 2 else [(0, 1)] for i in range(8)
        }
        caps = {(0, 1): 7.0, (1, 2): 2.0}
        rates = max_min_allocation(paths, caps)
        load01 = sum(rates[i] for i in paths)
        load12 = sum(rates[i] for i in paths if i % 2)
        assert load01 <= 7.0 + 1e-9
        assert load12 <= 2.0 + 1e-9

    def test_every_flow_has_a_saturated_bottleneck(self):
        paths = {i: [(0, 1)] if i < 3 else [(1, 2)] for i in range(6)}
        caps = {(0, 1): 6.0, (1, 2): 3.0}
        rates = max_min_allocation(paths, caps)
        # Flows 0-2 share link (0,1): 2.0 each; 3-5 share (1,2): 1.0 each.
        assert all(rates[i] == pytest.approx(2.0) for i in range(3))
        assert all(rates[i] == pytest.approx(1.0) for i in range(3, 6))


class TestEdgeCases:
    def test_empty_path_infinite_rate(self):
        rates = max_min_allocation({1: []}, {})
        assert rates[1] == float("inf")

    def test_no_flows(self):
        assert max_min_allocation({}, {(0, 1): 1.0}) == {}

    def test_unknown_arc_rejected(self):
        with pytest.raises(KeyError):
            max_min_allocation({1: [(7, 8)]}, {(0, 1): 1.0})

    def test_multiplicity_counted_twice(self):
        # A VLB detour crossing the same arc twice consumes double there.
        rates = max_min_allocation(
            {1: [(0, 1), (1, 0), (0, 1)]}, {(0, 1): 6.0, (1, 0): 6.0}
        )
        assert rates[1] == pytest.approx(3.0)
