"""End-to-end integration tests: the paper's qualitative claims at small
scale, exercising topologies + workloads + both simulators together."""

import pytest

from repro.sim import NetworkParams, run_packet_experiment
from repro.flowsim import run_flow_experiment
from repro.topologies import fattree, xpander, xpander_from_budget
from repro.traffic import (
    FlowSpec,
    PoissonArrivals,
    Workload,
    a2a_pair_distribution,
    pfabric_web_search,
    permute_pair_distribution,
)

FAST = NetworkParams(link_rate_bps=1e9)


@pytest.fixture(scope="module")
def ft():
    return fattree(4).topology


@pytest.fixture(scope="module")
def xp_two_thirds(ft):
    # 2/3 the fat-tree's 20 switches, same server count.
    return xpander_from_budget(
        num_switches=13, ports_per_switch=4 + 2, servers_total=ft.num_servers
    )


class TestEcmpTwoRackPathology:
    """Paper Fig 7(a/b): between two adjacent Xpander racks, ECMP can only
    use the single direct link; VLB exploits the rest of the network."""

    def _two_rack_flows(self, xp, n_flows=20, size=100_000):
        u, v = next(iter(xp.graph.edges()))
        su = xp.tor_to_servers()[u]
        sv = xp.tor_to_servers()[v]
        flows = []
        t = 0.0
        for i in range(n_flows):
            a, b = su[i % len(su)], sv[(i // 2) % len(sv)]
            if i % 2:
                a, b = b, a
            flows.append(FlowSpec(i, a, b, size, t))
            t += 0.00005
        return flows

    def test_vlb_beats_ecmp_under_load(self):
        xp = xpander(4, 6, 4)
        flows = self._two_rack_flows(xp)
        ecmp = run_packet_experiment(
            xp, flows, routing="ecmp", measure_start=0.0, measure_end=0.01,
            network_params=FAST,
        )
        vlb = run_packet_experiment(
            xp, flows, routing="vlb", measure_start=0.0, measure_end=0.01,
            network_params=FAST,
        )
        assert vlb.avg_fct() < ecmp.avg_fct()


class TestVlbAllToAllPathology:
    """Paper Fig 7(c): under network-wide all-to-all load, VLB's detours
    waste capacity and ECMP wins."""

    def test_ecmp_beats_vlb_at_high_a2a_load(self):
        xp = xpander(4, 6, 4)
        wl = Workload(
            a2a_pair_distribution(xp, 1.0),
            pfabric_web_search(150_000),
            PoissonArrivals(12_000.0),
            seed=5,
        )
        flows = wl.generate(horizon=0.06)
        ecmp = run_packet_experiment(
            xp, flows, routing="ecmp", measure_start=0.01, measure_end=0.05,
            network_params=FAST,
        )
        vlb = run_packet_experiment(
            xp, flows, routing="vlb", measure_start=0.01, measure_end=0.05,
            network_params=FAST,
        )
        assert ecmp.avg_fct() < vlb.avg_fct()


class TestHybRobustness:
    """Paper §6.3/6.5: HYB tracks the better of ECMP and VLB in both
    corner cases."""

    def test_hyb_close_to_best_on_a2a(self):
        xp = xpander(4, 6, 4)
        wl = Workload(
            a2a_pair_distribution(xp, 1.0),
            pfabric_web_search(150_000),
            PoissonArrivals(8_000.0),
            seed=7,
        )
        flows = wl.generate(horizon=0.06)
        results = {}
        for routing in ("ecmp", "vlb", "hyb"):
            stats = run_packet_experiment(
                xp, flows, routing=routing, measure_start=0.01,
                measure_end=0.05, network_params=FAST,
            )
            results[routing] = stats.avg_fct()
        best = min(results["ecmp"], results["vlb"])
        assert results["hyb"] <= best * 2.0


class TestEqualCostXpanderVsFatTree:
    """Paper Figs 9-11: on skewed (small-fraction) workloads, an Xpander at
    ~2/3 cost matches the full-bandwidth fat-tree."""

    def test_skewed_permute_fct_comparable(self, ft, xp_two_thirds):
        rate = 3000.0
        results = {}
        for topo, routing, name in (
            (ft, "ecmp", "fattree"),
            (xp_two_thirds, "hyb", "xpander"),
        ):
            wl = Workload(
                permute_pair_distribution(topo, 0.3, seed=2),
                pfabric_web_search(200_000),
                PoissonArrivals(rate),
                seed=3,
            )
            stats = run_packet_experiment(
                topo, wl, routing=routing, measure_start=0.02,
                measure_end=0.08, network_params=FAST,
            )
            results[name] = stats
        assert results["xpander"].num_unfinished == 0
        # Within 2x of the full-bandwidth fat-tree at 2/3 the switches.
        assert (
            results["xpander"].avg_fct() <= 2.0 * results["fattree"].avg_fct()
        )


class TestFluidVsPacketConsistency:
    """The two simulators must agree on relative ordering in clear-cut
    scenarios (ECMP two-rack congestion vs an idle network)."""

    def test_congested_vs_idle_ordering(self):
        xp = xpander(4, 6, 4)
        u, v = next(iter(xp.graph.edges()))
        su, sv = xp.tor_to_servers()[u], xp.tor_to_servers()[v]
        congested = [
            FlowSpec(i, su[i % 4], sv[i % 4], 200_000, 0.0) for i in range(8)
        ]
        idle = [FlowSpec(0, su[0], sv[0], 200_000, 0.0)]
        for runner in (
            lambda f: run_packet_experiment(
                xp, f, routing="ecmp", measure_start=0.0, measure_end=0.01,
                network_params=FAST,
            ),
            lambda f: run_flow_experiment(xp, f, routing="ecmp", link_rate_bps=1e9),
        ):
            assert runner(congested).avg_fct() > runner(idle).avg_fct()
