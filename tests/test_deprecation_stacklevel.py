"""Satellite regression: deprecation warnings point at the *caller*.

A shim whose ``stacklevel`` is wrong attributes the warning to the shim
module itself, which makes ``python -W error::DeprecationWarning`` (and
warning filters keyed on file) useless for finding call sites.  Every
shim below must report THIS file as the warning's origin.
"""

import argparse

import pytest

from repro.topologies import fattree, jellyfish


def _assert_warns_here(warninfo):
    assert len(warninfo) >= 1
    assert warninfo[0].filename == __file__, (
        f"warning attributed to {warninfo[0].filename}, not the caller"
    )


class TestFailureShims:
    @pytest.fixture
    def topo(self):
        return jellyfish(8, 3, 1, seed=0)

    def test_fail_links(self, topo):
        from repro.topologies import fail_links

        link = next(iter(topo.graph.edges()))
        with pytest.warns(DeprecationWarning) as w:
            fail_links(topo, [link])
        _assert_warns_here(w)

    def test_fail_switches(self, topo):
        from repro.topologies import fail_switches

        with pytest.warns(DeprecationWarning) as w:
            fail_switches(topo, [topo.tors[0]])
        _assert_warns_here(w)

    def test_random_link_failures(self, topo):
        from repro.topologies import random_link_failures

        with pytest.warns(DeprecationWarning) as w:
            random_link_failures(topo, 0.1, seed=0)
        _assert_warns_here(w)

    def test_random_switch_failures(self, topo):
        from repro.topologies import random_switch_failures

        with pytest.warns(DeprecationWarning) as w:
            random_switch_failures(topo, 0.1, seed=0)
        _assert_warns_here(w)


class TestRegistryShims:
    def test_make_routing(self):
        from repro.sim import make_routing

        with pytest.warns(DeprecationWarning) as w:
            make_routing("ecmp", fattree(4).topology)
        _assert_warns_here(w)

    def test_harness_build_topology(self):
        from repro.harness.execute import build_topology

        with pytest.warns(DeprecationWarning) as w:
            build_topology({"family": "fattree", "k": 4})
        _assert_warns_here(w)

    def test_cli_build_topology(self):
        from repro.cli import build_topology

        args = argparse.Namespace(k=4, core_fraction=1.0, servers=0)
        with pytest.warns(DeprecationWarning) as w:
            build_topology("fattree", args)
        _assert_warns_here(w)


class TestTelemetryShim:
    def test_network_report(self):
        from repro.sim import PacketSimulation, telemetry

        sim = PacketSimulation(fattree(4).topology)
        with pytest.warns(DeprecationWarning) as w:
            telemetry.network_report(sim.network)
        _assert_warns_here(w)
