"""Tests for the dynamic-network models (paper §4)."""

import math

import pytest

from repro.topologies import (
    DynamicNetworkModel,
    equal_cost_dynamic_ports,
    moore_bound_mean_distance,
    restricted_dynamic_throughput,
    unrestricted_dynamic_throughput,
)


class TestMooreBound:
    def test_complete_graph_case(self):
        # Degree >= n-1: everyone at distance 1.
        assert moore_bound_mean_distance(5, 4) == 1.0

    def test_toy_example_value(self):
        # Paper §4.1: 9 racks, degree 6 -> (6*1 + 2*2)/8 = 1.25.
        assert moore_bound_mean_distance(9, 6) == pytest.approx(1.25)

    def test_grows_with_nodes(self):
        assert moore_bound_mean_distance(100, 4) > moore_bound_mean_distance(20, 4)

    def test_shrinks_with_degree(self):
        assert moore_bound_mean_distance(50, 10) < moore_bound_mean_distance(50, 4)

    def test_trivial_cases(self):
        assert moore_bound_mean_distance(1, 3) == 0.0
        assert moore_bound_mean_distance(2, 1) == 1.0
        assert math.isinf(moore_bound_mean_distance(3, 1))
        assert math.isinf(moore_bound_mean_distance(5, 0))

    def test_is_a_lower_bound_for_real_graphs(self):
        # Any actual degree-r graph has mean distance >= the Moore bound.
        import networkx as nx

        g = nx.random_regular_graph(4, 30, seed=1)
        real = nx.average_shortest_path_length(g)
        assert real >= moore_bound_mean_distance(30, 4) - 1e-9


class TestUnrestrictedModel:
    def test_full_when_ports_match(self):
        assert unrestricted_dynamic_throughput(8, 8) == 1.0

    def test_ratio_when_oversubscribed(self):
        assert unrestricted_dynamic_throughput(6, 8) == pytest.approx(0.75)

    def test_capped_at_line_rate(self):
        assert unrestricted_dynamic_throughput(16, 8) == 1.0

    def test_no_servers(self):
        assert unrestricted_dynamic_throughput(4, 0) == 1.0


class TestRestrictedModel:
    def test_paper_toy_example_80_percent(self):
        # §4.1: 9 active racks, 6 network ports, 6 servers -> exactly 0.8.
        assert restricted_dynamic_throughput(9, 6, 6) == pytest.approx(0.8)

    def test_never_exceeds_unrestricted(self):
        for n in (4, 9, 20, 50):
            r = restricted_dynamic_throughput(n, 6, 8)
            assert r <= unrestricted_dynamic_throughput(6, 8) + 1e-12

    def test_degrades_with_more_active_racks(self):
        values = [restricted_dynamic_throughput(n, 6, 6) for n in (5, 10, 30, 60)]
        assert values == sorted(values, reverse=True)

    def test_single_rack_full(self):
        assert restricted_dynamic_throughput(1, 4, 8) == 1.0


class TestEqualCost:
    def test_delta_1_5(self):
        assert equal_cost_dynamic_ports(9, delta=1.5) == 6

    def test_delta_1_identity(self):
        assert equal_cost_dynamic_ports(7, delta=1.0) == 7

    def test_delta_below_one_rejected(self):
        with pytest.raises(ValueError):
            equal_cost_dynamic_ports(8, delta=0.5)


class TestDynamicNetworkModel:
    def test_unrestricted(self):
        m = DynamicNetworkModel(num_tors=54, network_ports=6, server_ports=6)
        assert m.unrestricted_throughput() == 1.0

    def test_restricted_fraction(self):
        m = DynamicNetworkModel(num_tors=54, network_ports=6, server_ports=6)
        # 9 of 54 racks active = 1/6 fraction -> the 0.8 toy bound.
        assert m.restricted_throughput(9 / 54) == pytest.approx(0.8)

    def test_invalid_fraction_rejected(self):
        m = DynamicNetworkModel(10, 4, 4)
        with pytest.raises(ValueError):
            m.restricted_throughput(0.0)
        with pytest.raises(ValueError):
            m.restricted_throughput(1.5)
