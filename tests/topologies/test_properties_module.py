"""Tests for the graph-properties module (paper §3, footnote 1)."""

import math

import networkx as nx
import pytest

from repro.topologies import (
    Topology,
    algebraic_connectivity,
    analyze,
    bisection_bandwidth,
    distance_distribution,
    fattree,
    jellyfish,
    path_diversity,
    spectral_gap,
    xpander,
)


def ring(n):
    g = nx.cycle_graph(n)
    nx.set_edge_attributes(g, 1.0, "capacity")
    return Topology(f"ring{n}", g, {v: 1 for v in g.nodes()})


def complete(n):
    g = nx.complete_graph(n)
    nx.set_edge_attributes(g, 1.0, "capacity")
    return Topology(f"K{n}", g, {v: 1 for v in g.nodes()})


class TestSpectralGap:
    def test_complete_graph(self):
        # K_n adjacency eigenvalues: n-1 and -1; gap = (n-1) - 1 = n - 2.
        assert spectral_gap(complete(6)) == pytest.approx(4.0)

    def test_ring_small_gap(self):
        # Rings are terrible expanders: gap -> 0 with size.
        assert spectral_gap(ring(24)) < 0.5

    def test_xpander_near_ramanujan(self):
        d = 5
        xp = xpander(d, 8, 1)
        # Ramanujan bound: lambda_2 <= 2 sqrt(d-1) -> gap >= d - 2 sqrt(d-1).
        assert spectral_gap(xp) >= d - 2 * math.sqrt(d - 1) - 0.5

    def test_jellyfish_expands_better_than_ring(self):
        jf = jellyfish(24, 4, 1, seed=0)
        assert spectral_gap(jf) > 4 * spectral_gap(ring(24))


class TestAlgebraicConnectivity:
    def test_positive_iff_connected(self):
        assert algebraic_connectivity(ring(8)) > 0

    def test_complete_graph_value(self):
        # K_n has Fiedler value n.
        assert algebraic_connectivity(complete(5)) == pytest.approx(5.0)


class TestBisectionBandwidth:
    def test_ring_bisection_is_two(self):
        # Any balanced split of a ring cuts exactly 2 edges.
        assert bisection_bandwidth(ring(12)) == pytest.approx(2.0)

    def test_complete_graph(self):
        # K_n balanced split cuts (n/2)^2 edges.
        assert bisection_bandwidth(complete(8)) == pytest.approx(16.0)

    def test_dumbbell_finds_the_thin_waist(self):
        g = nx.complete_graph(4)
        h = nx.complete_graph(4)
        g = nx.disjoint_union(g, h)
        g.add_edge(0, 4)
        nx.set_edge_attributes(g, 1.0, "capacity")
        topo = Topology("dumbbell", g, {v: 1 for v in g.nodes()})
        assert bisection_bandwidth(topo) == pytest.approx(1.0)

    def test_respects_capacities(self):
        g = nx.cycle_graph(6)
        nx.set_edge_attributes(g, 2.0, "capacity")
        topo = Topology("fatring", g, {v: 1 for v in g.nodes()})
        assert bisection_bandwidth(topo) == pytest.approx(4.0)

    def test_expander_bisection_scales_with_edges(self):
        xp = xpander(5, 6, 1)
        # A good expander's bisection is a constant fraction of its edges.
        assert bisection_bandwidth(xp) >= 0.15 * xp.num_links


class TestPathDiversityAndDistances:
    def test_fattree_has_high_diversity(self):
        ft = fattree(4).topology
        ring_div = path_diversity(ring(20), samples=30)
        ft_div = path_diversity(ft, samples=30)
        assert ft_div > ring_div

    def test_distance_distribution_sums_to_one(self):
        dist = distance_distribution(ring(10))
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_ring_distances(self):
        dist = distance_distribution(ring(8))
        # On C8: distances 1..4; distance 4 pairs are half as common.
        assert dist[1] == dist[2] == dist[3] == pytest.approx(2 / 7)
        assert dist[4] == pytest.approx(1 / 7)


class TestAnalyze:
    def test_summary_fields(self):
        xp = xpander(4, 5, 2)
        props = analyze(xp)
        assert props.switches == 25
        assert props.servers == 50
        assert props.diameter >= 2
        assert props.bisection_per_server == pytest.approx(
            props.bisection_bandwidth / 50
        )
        assert len(props.as_row()) == 9

    def test_footnote_1_shape(self):
        """Footnote 1: bisection bandwidth ranks topologies differently
        than throughput can — a ring and a star-ish tree may have equal
        bisection but very different throughput.  Here: check that
        bisection alone does not determine average path length."""
        a = ring(16)
        g = nx.barbell_graph(8, 0)
        nx.set_edge_attributes(g, 1.0, "capacity")
        b = Topology("barbell", g, {v: 1 for v in g.nodes()})
        # Similar (tiny) bisection, very different distance structure.
        assert abs(bisection_bandwidth(a) - bisection_bandwidth(b)) <= 1.0
        assert abs(
            a.average_shortest_path_length() - b.average_shortest_path_length()
        ) > 0.5
