"""Tests for LongHop Cayley-graph topologies."""

import networkx as nx
import pytest

from repro.topologies import (
    TopologyError,
    cayley_graph_gf2,
    longhop,
    select_generators,
    spectral_gap_gf2,
)
from repro.topologies.longhop import cayley_spectrum_gf2


class TestCayleyGraph:
    def test_hypercube_from_unit_vectors(self):
        n = 3
        g = cayley_graph_gf2(n, [1, 2, 4])
        h = nx.hypercube_graph(n)
        assert nx.is_isomorphic(g, h)

    def test_regularity(self):
        g = cayley_graph_gf2(4, [1, 2, 4, 8, 15])
        assert all(d == 5 for _, d in g.degree())

    def test_vertex_transitive_distances(self):
        # Cayley graphs are vertex-transitive: every node sees the same
        # sorted distance profile.
        g = cayley_graph_gf2(4, [1, 2, 4, 8, 7])
        profiles = set()
        for v in g.nodes():
            dist = nx.single_source_shortest_path_length(g, v)
            profiles.add(tuple(sorted(dist.values())))
        assert len(profiles) == 1

    def test_duplicate_generators_rejected(self):
        with pytest.raises(TopologyError):
            cayley_graph_gf2(3, [1, 1, 2])

    def test_out_of_range_generator_rejected(self):
        with pytest.raises(TopologyError):
            cayley_graph_gf2(3, [0, 1])
        with pytest.raises(TopologyError):
            cayley_graph_gf2(3, [8])


class TestSpectrum:
    def test_hypercube_spectrum(self):
        # Q3 eigenvalues are {3, 1, -1, -3} with binomial multiplicities.
        spec = sorted(cayley_spectrum_gf2(3, [1, 2, 4]))
        assert spec == [-3, -1, -1, -1, 1, 1, 1, 3]

    def test_gap_increases_with_long_hop(self):
        # Adding a good long-hop generator strictly improves Q4's gap.
        base = spectral_gap_gf2(4, [1, 2, 4, 8])
        gens = select_generators(4, 5)
        assert spectral_gap_gf2(4, gens) > base


class TestSelectGenerators:
    def test_includes_unit_vectors(self):
        gens = select_generators(4, 6)
        for b in range(4):
            assert (1 << b) in gens

    def test_degree_below_n_rejected(self):
        with pytest.raises(TopologyError):
            select_generators(4, 3)

    def test_degree_above_space_rejected(self):
        with pytest.raises(TopologyError):
            select_generators(3, 8)

    def test_deterministic(self):
        assert select_generators(5, 7) == select_generators(5, 7)


class TestLonghopTopology:
    def test_dimensions(self):
        t = longhop(5, 7, 3)
        assert t.num_switches == 32
        assert all(d == 7 for _, d in t.graph.degree())
        assert t.num_servers == 96

    def test_connected(self):
        assert longhop(4, 5, 1).is_connected()

    def test_smaller_diameter_than_hypercube(self):
        hyper = longhop(6, 6, 1)  # degree 6 = pure hypercube
        lh = longhop(6, 9, 1)
        assert lh.diameter() < hyper.diameter()

    def test_paper_scale_dimensions(self):
        # Paper Fig 5(b): 512 ToRs with 10 network ports -> n=9, degree 10.
        assert 2**9 == 512
