"""Tests for the cabling/layout module (paper Fig 3)."""

import pytest

from repro.topologies import (
    BUNDLING_DISCOUNT,
    CablingReport,
    FloorPlan,
    TopologyError,
    fattree,
    fattree_cabling,
    flat_cabling,
    jellyfish,
    xpander,
    xpander_cabling,
)


class TestFloorPlan:
    def test_grid_layout(self):
        plan = FloorPlan.grid(6, columns=3)
        assert plan.positions[0] == (0, 0)
        assert plan.positions[5] == (1, 2)

    def test_distance_symmetric(self):
        plan = FloorPlan.grid(9)
        assert plan.distance_m(0, 8) == plan.distance_m(8, 0)

    def test_distance_includes_slack(self):
        plan = FloorPlan.grid(4)
        assert plan.distance_m(0, 0) == pytest.approx(4.0)  # slack only

    def test_empty_rejected(self):
        with pytest.raises(TopologyError):
            FloorPlan.grid(0)


class TestXpanderCabling:
    def test_one_bundle_per_meta_node_pair(self):
        d, lift = 5, 6
        xp = xpander(d, lift, 2)
        report = xpander_cabling(xp)
        meta_pairs = (d + 1) * d // 2
        assert report.num_bundles == meta_pairs
        assert report.cables_per_bundle == pytest.approx(lift)
        assert report.bundled_fraction == 1.0

    def test_cable_count_matches_topology(self):
        xp = xpander(4, 5, 2)
        assert xpander_cabling(xp).num_cables == xp.num_links

    def test_requires_meta_node_annotations(self):
        jf = jellyfish(12, 4, 2, seed=0)
        with pytest.raises(TopologyError, match="meta_node"):
            xpander_cabling(jf)


class TestFatTreeCabling:
    def test_fully_bundled(self):
        ft = fattree(6)
        report = fattree_cabling(ft)
        assert report.bundled_fraction == 1.0
        assert report.num_cables == ft.topology.num_links

    def test_bundle_structure(self):
        k = 6
        ft = fattree(k)
        report = fattree_cabling(ft)
        # One intra-pod bundle per pod plus one (pod, core-group) bundle
        # per pod and group.
        assert report.num_bundles == k + k * (k // 2)


class TestFlatCabling:
    def test_random_graph_mostly_singletons(self):
        jf = jellyfish(30, 6, 2, seed=0)
        report = flat_cabling(jf)
        # A sparse random graph virtually never has parallel rack pairs.
        assert report.bundled_fraction < 0.05
        assert report.num_bundles == jf.num_links

    def test_cabling_friendliness_comparison(self):
        """The paper's Fig 3 argument: Xpander bundles, Jellyfish can't."""
        xp = xpander(5, 6, 2)  # 36 switches
        jf = jellyfish(36, 5, 2, seed=1)
        xp_report = xpander_cabling(xp)
        jf_report = flat_cabling(jf)
        assert xp_report.cables_per_bundle > 3 * jf_report.cables_per_bundle


class TestCostModel:
    def test_bundling_discount_applied(self):
        r = CablingReport("x", num_cables=10, num_bundles=2,
                          total_length_m=100.0, bundled_fraction=1.0)
        assert r.fiber_cost(1.0) == pytest.approx(100.0 * (1 - BUNDLING_DISCOUNT))

    def test_unbundled_pays_full(self):
        r = CablingReport("x", num_cables=10, num_bundles=10,
                          total_length_m=100.0, bundled_fraction=0.0)
        assert r.fiber_cost(1.0) == pytest.approx(100.0)

    def test_xpander_fiber_cheaper_than_jellyfish(self):
        xp = xpander(5, 6, 2)
        jf = jellyfish(36, 5, 2, seed=1)
        assert xpander_cabling(xp).fiber_cost() < flat_cabling(jf).fiber_cost()
