"""Tests for failure injection."""

import pytest

from repro.topologies import (
    TopologyError,
    fail_links,
    fail_switches,
    jellyfish,
    largest_connected_component,
    random_link_failures,
    random_switch_failures,
    xpander,
)


@pytest.fixture()
def xp():
    return xpander(4, 6, 2)


class TestFailLinks:
    def test_removes_exactly_given_links(self, xp):
        edges = list(xp.graph.edges())[:3]
        degraded = fail_links(xp, edges)
        assert degraded.num_links == xp.num_links - 3
        for u, v in edges:
            assert not degraded.graph.has_edge(u, v)

    def test_original_untouched(self, xp):
        before = xp.num_links
        fail_links(xp, list(xp.graph.edges())[:2])
        assert xp.num_links == before

    def test_missing_link_rejected(self, xp):
        with pytest.raises(TopologyError):
            fail_links(xp, [(0, 0)])


class TestFailSwitches:
    def test_removes_switch_and_servers(self, xp):
        victim = xp.switches[0]
        degraded = fail_switches(xp, [victim])
        assert victim not in degraded.graph
        assert degraded.num_servers == xp.num_servers - xp.servers_at(victim)

    def test_missing_switch_rejected(self, xp):
        with pytest.raises(TopologyError):
            fail_switches(xp, [10**9])

    def test_all_failed_rejected(self, xp):
        with pytest.raises(TopologyError):
            fail_switches(xp, xp.switches)


class TestRandomFailures:
    def test_fraction_of_links(self, xp):
        degraded = random_link_failures(xp, 0.2, seed=1)
        assert degraded.num_links == xp.num_links - round(0.2 * xp.num_links)

    def test_deterministic(self, xp):
        a = random_link_failures(xp, 0.3, seed=5)
        b = random_link_failures(xp, 0.3, seed=5)
        assert sorted(a.graph.edges()) == sorted(b.graph.edges())

    def test_fraction_of_switches(self, xp):
        degraded = random_switch_failures(xp, 0.25, seed=2)
        assert degraded.num_switches == xp.num_switches - round(0.25 * 30)

    def test_invalid_fraction(self, xp):
        with pytest.raises(TopologyError):
            random_link_failures(xp, 1.0)
        with pytest.raises(TopologyError):
            random_switch_failures(xp, -0.1)


class TestLargestComponent:
    def test_noop_when_connected(self, xp):
        assert largest_connected_component(xp) is xp

    def test_strands_removed(self):
        jf = jellyfish(12, 3, 2, seed=0)
        victim = jf.switches[0]
        # Cut off one switch completely.
        degraded = fail_links(jf, [tuple(e) for e in jf.graph.edges(victim)])
        lcc = largest_connected_component(degraded)
        assert lcc.is_connected()
        assert victim not in lcc.graph
        assert lcc.num_servers == jf.num_servers - jf.servers_at(victim)


class TestResilienceShape:
    def test_expander_degrades_gracefully(self):
        """Expanders stay connected and near-full-throughput under random
        link failures — the resilience property the paper's §3 topologies
        are known for."""
        from repro.throughput import max_concurrent_throughput
        from repro.traffic import permutation_tm

        xp = xpander(5, 8, 3)
        tm = permutation_tm(xp.tors, 3, 0.3, seed=0)
        base = max_concurrent_throughput(xp, tm).per_server
        degraded = largest_connected_component(
            random_link_failures(xp, 0.1, seed=3)
        )
        assert degraded.is_connected()
        after = max_concurrent_throughput(degraded, tm).per_server
        assert after >= 0.6 * base
