"""Tests for the SlimFly MMS construction."""

import pytest

from repro.topologies import (
    TopologyError,
    is_valid_slimfly_q,
    slimfly,
    slimfly_network_degree,
)


class TestValidity:
    def test_valid_qs(self):
        assert is_valid_slimfly_q(5)
        assert is_valid_slimfly_q(13)
        assert is_valid_slimfly_q(17)
        assert is_valid_slimfly_q(29)

    def test_invalid_qs(self):
        assert not is_valid_slimfly_q(4)  # not prime
        assert not is_valid_slimfly_q(7)  # 7 % 4 == 3
        assert not is_valid_slimfly_q(9)  # prime power, unsupported
        assert not is_valid_slimfly_q(1)

    def test_invalid_q_raises(self):
        with pytest.raises(TopologyError):
            slimfly(7, 1)


class TestStructure:
    @pytest.mark.parametrize("q", [5, 13])
    def test_switch_count(self, q):
        t = slimfly(q, 1)
        assert t.num_switches == 2 * q * q

    @pytest.mark.parametrize("q", [5, 13])
    def test_uniform_degree(self, q):
        t = slimfly(q, 1)
        expected = slimfly_network_degree(q)
        assert all(d == expected for _, d in t.graph.degree())
        assert expected == (3 * q - 1) // 2

    @pytest.mark.parametrize("q", [5, 13])
    def test_diameter_two(self, q):
        # The defining property of MMS graphs.
        assert slimfly(q, 1).diameter() == 2

    def test_connected(self):
        assert slimfly(5, 1).is_connected()

    def test_paper_configuration_dimensions(self):
        # Paper Fig 5(a): q=17 gives 578 ToRs with 25 network ports.
        assert 2 * 17 * 17 == 578
        assert slimfly_network_degree(17) == 25

    def test_servers(self):
        t = slimfly(5, 4)
        assert t.num_servers == 200
