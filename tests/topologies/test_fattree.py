"""Tests for fat-tree construction and oversubscription."""

import pytest

from repro.topologies import TopologyError, fattree, oversubscribed_fattree
from repro.topologies.fattree import AGG, CORE, EDGE


class TestFullFatTree:
    @pytest.mark.parametrize("k", [4, 6, 8])
    def test_switch_count(self, k):
        ft = fattree(k)
        # (k/2)^2 core + k pods * (k/2 agg + k/2 edge) = 5k^2/4
        assert ft.topology.num_switches == 5 * k * k // 4

    @pytest.mark.parametrize("k", [4, 6, 8])
    def test_server_count(self, k):
        ft = fattree(k)
        assert ft.topology.num_servers == k**3 // 4

    @pytest.mark.parametrize("k", [4, 6, 8])
    def test_link_count(self, k):
        ft = fattree(k)
        # Each of 3 layers contributes k * (k/2)^2 / ... : edge-agg and
        # agg-core are each k pods * (k/2)*(k/2) links.
        expected = 2 * k * (k // 2) ** 2
        assert ft.topology.num_links == expected

    def test_all_switches_use_k_ports(self):
        k = 4
        ft = fattree(k)
        ft.topology.validate_port_budget(k)
        # Core and agg use exactly k ports as network links.
        for s in ft.switches_in_layer(CORE):
            assert ft.topology.network_degree(s) == k
        for s in ft.switches_in_layer(AGG):
            assert ft.topology.network_degree(s) == k
        for s in ft.switches_in_layer(EDGE):
            assert ft.topology.network_degree(s) == k // 2
            assert ft.topology.servers_at(s) == k // 2

    def test_connected(self):
        assert fattree(4).topology.is_connected()

    def test_odd_k_rejected(self):
        with pytest.raises(TopologyError):
            fattree(5)

    def test_k_zero_rejected(self):
        with pytest.raises(TopologyError):
            fattree(0)

    def test_diameter_is_four(self):
        # ToR -> agg -> core -> agg -> ToR.
        assert fattree(4).topology.diameter() == 4

    def test_pod_coordinates(self):
        ft = fattree(4)
        for pod in range(4):
            edges = ft.edge_switches_in_pod(pod)
            assert len(edges) == 2
            for e in edges:
                assert ft.pod_of(e) == pod

    def test_custom_servers_per_edge(self):
        ft = fattree(4, servers_per_edge=5)
        assert ft.topology.num_servers == 8 * 5

    def test_negative_servers_rejected(self):
        with pytest.raises(TopologyError):
            fattree(4, servers_per_edge=-1)

    def test_servers_only_on_edge_layer(self):
        ft = fattree(6)
        tors = set(ft.topology.tors)
        assert tors == set(ft.switches_in_layer(EDGE))


class TestOversubscribedFatTree:
    def test_full_fraction_is_noop(self):
        ft = oversubscribed_fattree(4, 1.0)
        assert ft.topology.num_switches == fattree(4).topology.num_switches

    def test_half_core_removed(self):
        k = 8
        full_core = (k // 2) ** 2
        ft = oversubscribed_fattree(k, 0.5)
        assert len(ft.switches_in_layer(CORE)) == full_core // 2

    def test_removal_spread_across_groups(self):
        k = 8
        ft = oversubscribed_fattree(k, 0.5)
        half = k // 2
        groups = [0] * half
        for s in ft.switches_in_layer(CORE):
            groups[ft.coordinates[s][2] // half] += 1
        # Every agg group keeps the same number of core switches.
        assert max(groups) - min(groups) <= 1

    def test_still_connected(self):
        assert oversubscribed_fattree(8, 0.3).topology.is_connected()

    def test_servers_untouched(self):
        ft = oversubscribed_fattree(4, 0.5)
        assert ft.topology.num_servers == 16

    def test_invalid_fraction_rejected(self):
        with pytest.raises(TopologyError):
            oversubscribed_fattree(4, 0.0)
        with pytest.raises(TopologyError):
            oversubscribed_fattree(4, 1.5)

    def test_at_least_one_core_kept(self):
        ft = oversubscribed_fattree(4, 0.01)
        assert len(ft.switches_in_layer(CORE)) >= 1
        assert ft.topology.is_connected()
