"""Tests for the Xpander construction."""

import pytest

from repro.topologies import (
    TopologyError,
    xpander,
    xpander_from_budget,
    xpander_num_switches,
)


class TestXpanderStructure:
    @pytest.mark.parametrize("d,lift", [(3, 4), (5, 8), (7, 10)])
    def test_switch_count(self, d, lift):
        t = xpander(d, lift, 1)
        assert t.num_switches == xpander_num_switches(d, lift) == (d + 1) * lift

    @pytest.mark.parametrize("d,lift", [(3, 4), (5, 8)])
    def test_d_regular(self, d, lift):
        t = xpander(d, lift, 1)
        assert all(deg == d for _, deg in t.graph.degree())

    def test_no_intra_meta_node_edges(self):
        d, lift = 5, 6
        t = xpander(d, lift, 1)
        for u, v in t.graph.edges():
            assert u // lift != v // lift

    def test_one_edge_per_meta_node_pair_per_switch(self):
        d, lift = 4, 5
        t = xpander(d, lift, 1)
        for v in t.graph.nodes():
            neighbor_metas = sorted(w // lift for w in t.graph.neighbors(v))
            own = v // lift
            expected = sorted(m for m in range(d + 1) if m != own)
            assert neighbor_metas == expected

    def test_connected(self):
        assert xpander(5, 8, 2).is_connected()

    def test_meta_node_annotation(self):
        t = xpander(3, 4, 1)
        for v in t.graph.nodes():
            assert t.graph.nodes[v]["meta_node"] == v // 4

    def test_random_matching_connected_and_regular(self):
        t = xpander(5, 8, 2, matching="random", seed=4)
        assert t.is_connected()
        assert all(deg == 5 for _, deg in t.graph.degree())

    def test_shift_deterministic(self):
        t1 = xpander(5, 8, 2)
        t2 = xpander(5, 8, 2)
        assert sorted(t1.graph.edges()) == sorted(t2.graph.edges())

    def test_good_expansion(self):
        # The Xpander should have much smaller diameter than a ring of the
        # same size: 48 switches at degree 5 must reach everything in a
        # few hops.
        t = xpander(5, 8, 2)
        assert t.diameter() <= 4

    def test_invalid_args_rejected(self):
        with pytest.raises(TopologyError):
            xpander(0, 4, 1)
        with pytest.raises(TopologyError):
            xpander(3, 0, 1)
        with pytest.raises(TopologyError):
            xpander(3, 4, 1, matching="bogus")


class TestXpanderFromBudget:
    def test_respects_budget(self):
        t = xpander_from_budget(num_switches=216, ports_per_switch=16, servers_total=1080)
        assert t.num_switches <= 216
        assert t.num_servers >= 1080

    def test_paper_config_packs_servers(self):
        # Paper §6.4: 216 switches x 16 ports, 1080 servers (5 per switch,
        # 11 network ports).
        t = xpander_from_budget(216, 16, 1080)
        assert all(t.servers_at(s) == 5 for s in t.switches)
        assert all(t.network_degree(s) == 11 for s in t.switches)

    def test_no_network_ports_rejected(self):
        with pytest.raises(TopologyError):
            xpander_from_budget(4, 4, 16)

    def test_tiny_budget_rejected(self):
        with pytest.raises(TopologyError):
            xpander_from_budget(1, 8, 4)
