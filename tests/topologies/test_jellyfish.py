"""Tests for Jellyfish random regular graphs."""

import pytest

from repro.topologies import TopologyError, jellyfish, random_regular_topology


class TestRandomRegularGraph:
    @pytest.mark.parametrize("n,r", [(10, 3), (20, 5), (32, 6), (50, 7)])
    def test_connected(self, n, r):
        g = random_regular_topology(n, r, seed=1)
        import networkx as nx

        assert nx.is_connected(g)

    @pytest.mark.parametrize("n,r", [(16, 4), (30, 5)])
    def test_nearly_regular(self, n, r):
        g = random_regular_topology(n, r, seed=0)
        degrees = [d for _, d in g.degree()]
        assert max(degrees) <= r
        # The incremental construction may strand a handful of ports.
        assert sum(degrees) >= n * r - 4

    def test_strict_mode_exactly_regular(self):
        g = random_regular_topology(24, 5, seed=3, strict=True)
        assert all(d == 5 for _, d in g.degree())

    def test_seed_determinism(self):
        g1 = random_regular_topology(20, 4, seed=7)
        g2 = random_regular_topology(20, 4, seed=7)
        assert sorted(g1.edges()) == sorted(g2.edges())

    def test_different_seeds_differ(self):
        g1 = random_regular_topology(20, 4, seed=1)
        g2 = random_regular_topology(20, 4, seed=2)
        assert sorted(g1.edges()) != sorted(g2.edges())

    def test_degree_ge_n_rejected(self):
        with pytest.raises(TopologyError):
            random_regular_topology(5, 5)

    def test_odd_product_rejected(self):
        with pytest.raises(TopologyError):
            random_regular_topology(5, 3)


class TestJellyfishTopology:
    def test_servers_attached_everywhere(self):
        t = jellyfish(16, 4, 3, seed=0)
        assert t.num_servers == 48
        assert all(t.servers_at(s) == 3 for s in t.switches)

    def test_no_self_loops_or_multi_edges(self):
        t = jellyfish(30, 6, 2, seed=5)
        for u, v in t.graph.edges():
            assert u != v

    def test_port_budget_respected(self):
        t = jellyfish(20, 5, 4, seed=2)
        t.validate_port_budget(9)

    def test_name_encodes_parameters(self):
        t = jellyfish(16, 4, 1, seed=9)
        assert "n=16" in t.name and "r=4" in t.name and "seed=9" in t.name


class TestDegreeSequenceJellyfish:
    def _build(self, seed=1):
        from repro.topologies import jellyfish_degree_sequence

        ports = {i: (4 if i < 8 else 5) for i in range(40)}
        servers = {i: (4 if i < 8 else 3) for i in range(40)}
        return jellyfish_degree_sequence(ports, servers, seed=seed), ports

    def test_realizes_degree_sequence(self):
        topo, ports = self._build()
        for s in topo.switches:
            assert topo.network_degree(s) <= ports[s]
        total = sum(topo.network_degree(s) for s in topo.switches)
        assert total >= sum(ports.values()) - 4

    def test_connected_and_server_counts(self):
        topo, _ = self._build()
        assert topo.is_connected()
        assert topo.num_servers == 8 * 4 + 32 * 3

    def test_deterministic(self):
        a, _ = self._build(seed=3)
        b, _ = self._build(seed=3)
        assert sorted(a.graph.edges()) == sorted(b.graph.edges())

    def test_mismatched_keys_rejected(self):
        from repro.topologies import TopologyError, jellyfish_degree_sequence

        with pytest.raises(TopologyError):
            jellyfish_degree_sequence({0: 2, 1: 2}, {0: 1})

    def test_odd_port_sum_rejected(self):
        from repro.topologies import TopologyError, jellyfish_degree_sequence

        with pytest.raises(TopologyError):
            jellyfish_degree_sequence({0: 1, 1: 2}, {0: 1, 1: 1})

    def test_negative_ports_rejected(self):
        from repro.topologies import TopologyError, jellyfish_degree_sequence

        with pytest.raises(TopologyError):
            jellyfish_degree_sequence({0: -1, 1: 1}, {0: 1, 1: 1})
