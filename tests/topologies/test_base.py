"""Tests for the Topology abstraction."""

import networkx as nx
import pytest

from repro.topologies import Topology, TopologyError


def triangle(capacity: float = 1.0) -> Topology:
    g = nx.Graph()
    g.add_edge(0, 1, capacity=capacity)
    g.add_edge(1, 2, capacity=capacity)
    g.add_edge(0, 2, capacity=capacity)
    return Topology("tri", g, {0: 2, 1: 2, 2: 0})


class TestConstruction:
    def test_counts(self):
        t = triangle()
        assert t.num_switches == 3
        assert t.num_links == 3
        assert t.num_servers == 4

    def test_default_capacity_filled(self):
        g = nx.Graph()
        g.add_edge(0, 1)
        t = Topology("x", g)
        assert t.capacity(0, 1) == 1.0

    def test_empty_graph_rejected(self):
        with pytest.raises(TopologyError):
            Topology("empty", nx.Graph())

    def test_server_on_missing_switch_rejected(self):
        g = nx.Graph()
        g.add_edge(0, 1)
        with pytest.raises(TopologyError, match="not in graph"):
            Topology("x", g, {7: 3})

    def test_negative_server_count_rejected(self):
        g = nx.Graph()
        g.add_edge(0, 1)
        with pytest.raises(TopologyError, match="negative"):
            Topology("x", g, {0: -1})

    def test_nonpositive_capacity_rejected(self):
        g = nx.Graph()
        g.add_edge(0, 1, capacity=0.0)
        with pytest.raises(TopologyError, match="capacity"):
            Topology("x", g)


class TestAccessors:
    def test_tors_excludes_serverless_switches(self):
        t = triangle()
        assert t.tors == [0, 1]

    def test_servers_at(self):
        t = triangle()
        assert t.servers_at(0) == 2
        assert t.servers_at(2) == 0
        assert t.servers_at(99) == 0

    def test_network_degree(self):
        t = triangle()
        assert t.network_degree(0) == 2

    def test_total_ports(self):
        t = triangle()
        # 3 cables * 2 + 4 servers
        assert t.total_ports() == 10

    def test_connectivity(self):
        t = triangle()
        assert t.is_connected()
        g = nx.Graph()
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        assert not Topology("disc", g).is_connected()

    def test_diameter_and_average_path(self):
        t = triangle()
        assert t.diameter() == 1
        assert t.average_shortest_path_length() == 1.0


class TestPortBudget:
    def test_within_budget(self):
        t = triangle()
        t.validate_port_budget(4)  # degree 2 + 2 servers

    def test_over_budget_raises(self):
        t = triangle()
        with pytest.raises(TopologyError, match="switch 0"):
            t.validate_port_budget(3)


class TestServerIds:
    def test_dense_and_grouped_by_tor(self):
        t = triangle()
        ids = list(t.iter_server_ids())
        assert ids == [(0, 0), (1, 0), (2, 1), (3, 1)]

    def test_server_to_tor_roundtrip(self):
        t = triangle()
        s2t = t.server_to_tor()
        t2s = t.tor_to_servers()
        for server, tor in s2t.items():
            assert server in t2s[tor]

    def test_deterministic_across_calls(self):
        t = triangle()
        assert list(t.iter_server_ids()) == list(t.iter_server_ids())


class TestMutation:
    def test_attach_servers_uniformly(self):
        t = triangle()
        t.attach_servers_uniformly(5, [2])
        assert t.servers_at(2) == 5

    def test_attach_to_missing_switch_raises(self):
        t = triangle()
        with pytest.raises(TopologyError):
            t.attach_servers_uniformly(1, [42])

    def test_attach_negative_raises(self):
        t = triangle()
        with pytest.raises(TopologyError):
            t.attach_servers_uniformly(-1, [0])
