"""Property-based tests for the extension modules (failures, cabling,
adversarial TMs, MPTCP chunking)."""


import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sim.mptcp import MptcpFlow
from repro.throughput.adversarial import random_hose_tm
from repro.topologies import (
    FloorPlan,
    largest_connected_component,
    random_link_failures,
    xpander,
)

slow_settings = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestFailureProperties:
    @slow_settings
    @given(
        fraction=st.floats(min_value=0.0, max_value=0.5),
        seed=st.integers(min_value=0, max_value=500),
    )
    def test_link_failures_remove_exact_count(self, fraction, seed):
        xp = xpander(4, 5, 2)
        degraded = random_link_failures(xp, fraction, seed=seed)
        assert degraded.num_links == xp.num_links - round(fraction * xp.num_links)
        # Node set unchanged (only switch failures remove nodes).
        assert set(degraded.graph.nodes()) == set(xp.graph.nodes())

    @slow_settings
    @given(seed=st.integers(min_value=0, max_value=500))
    def test_lcc_always_connected(self, seed):
        xp = xpander(3, 4, 2)
        degraded = random_link_failures(xp, 0.45, seed=seed)
        lcc = largest_connected_component(degraded)
        assert lcc.is_connected()
        assert lcc.num_switches <= xp.num_switches


class TestFloorPlanProperties:
    @slow_settings
    @given(
        n=st.integers(min_value=1, max_value=100),
        a=st.integers(min_value=0, max_value=99),
        b=st.integers(min_value=0, max_value=99),
    )
    def test_distance_metric_properties(self, n, a, b):
        a, b = a % n, b % n
        plan = FloorPlan.grid(n)
        # Symmetry and slack-only lower bound.
        assert plan.distance_m(a, b) == plan.distance_m(b, a)
        assert plan.distance_m(a, b) >= 4.0
        if a == b:
            assert plan.distance_m(a, b) == pytest.approx(4.0)


class TestHoseTmProperties:
    @slow_settings
    @given(
        n=st.integers(min_value=3, max_value=20),
        s=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=500),
    )
    def test_sinkhorn_hose_feasible(self, n, s, seed):
        tors = list(range(n))
        tm = random_hose_tm(tors, s, seed=seed)
        tm.validate_hose({t: s for t in tors})

    @slow_settings
    @given(seed=st.integers(min_value=0, max_value=100))
    def test_rows_and_columns_saturated(self, seed):
        tors = list(range(8))
        tm = random_hose_tm(tors, 3, seed=seed)
        for t in tors:
            assert tm.egress(t) == pytest.approx(3.0, rel=1e-2)
            assert tm.ingress(t) == pytest.approx(3.0, rel=1e-2)


class TestMptcpChunkingProperties:
    @slow_settings
    @given(
        size=st.integers(min_value=1, max_value=10_000_000),
        subflows=st.integers(min_value=1, max_value=8),
        chunk=st.integers(min_value=1460, max_value=1_000_000),
    )
    def test_initial_chunks_cover_at_most_size(self, size, subflows, chunk):
        chunks = MptcpFlow._initial_chunks(size, subflows, chunk)
        assert sum(chunks) <= size
        assert all(c >= 1 for c in chunks)
        assert len(chunks) <= subflows

    @slow_settings
    @given(
        size=st.integers(min_value=1460, max_value=10_000_000),
        subflows=st.integers(min_value=1, max_value=8),
    )
    def test_initial_chunks_nonempty(self, size, subflows):
        chunks = MptcpFlow._initial_chunks(size, subflows, 64 * 1460)
        assert chunks
        # The remainder (pool) is what's left to schedule dynamically.
        assert size - sum(chunks) >= 0
