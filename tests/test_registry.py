"""Registry-built objects match what the legacy constructors produce.

The string/mapping spec front door (:mod:`repro.registry`) must be a
pure re-routing of the old direct constructors: same graphs, same
traffic matrices, same routing policies, bit-for-bit, for fixed seeds.
"""

import pytest

from repro import registry
from repro.topologies import fattree, jellyfish, xpander
from repro.traffic import longest_matching_tm, permute_pair_distribution


def _same_graph(a, b):
    return (
        set(a.graph.nodes) == set(b.graph.nodes)
        and set(map(frozenset, a.graph.edges)) == set(map(frozenset, b.graph.edges))
        and a.servers_per_switch == b.servers_per_switch
    )


class TestTopologyEquivalence:
    def test_jellyfish_mapping_spec(self):
        built = registry.topology(
            {"family": "jellyfish", "switches": 10, "degree": 4,
             "servers": 2, "seed": 3}
        )
        direct = jellyfish(10, 4, 2, seed=3)
        assert _same_graph(built, direct)

    def test_jellyfish_string_spec(self):
        built = registry.topology("jellyfish:switches=10,degree=4,servers=2,seed=3")
        direct = jellyfish(10, 4, 2, seed=3)
        assert _same_graph(built, direct)

    def test_fattree(self):
        topo, raw = registry.build_topology({"family": "fattree", "k": 4})
        direct = fattree(4)
        assert _same_graph(topo, direct.topology)
        assert raw is not None  # FatTree wrapper kept for cabling

    def test_xpander(self):
        built = registry.topology(
            {"family": "xpander", "degree": 4, "lift": 5, "servers": 2}
        )
        direct = xpander(4, 5, 2)
        assert _same_graph(built, direct)

    def test_unknown_family_is_clean_error(self):
        with pytest.raises(registry.RegistryError, match="disco"):
            registry.topology({"family": "disco"})


class TestTrafficEquivalence:
    def test_longest_matching_tm(self):
        topo = jellyfish(10, 4, 2, seed=1)
        built = registry.traffic(
            {"pattern": "longest_matching", "fraction": 1.0, "seed": 2}, topo
        )
        direct = longest_matching_tm(topo, 1.0, seed=2)
        assert built.demands == direct.demands

    def test_permute_pair_weights_match(self):
        topo = jellyfish(10, 4, 2, seed=1)
        built = registry.traffic(
            {"pattern": "permute", "fraction": 0.5, "seed": 4}, topo
        )
        direct = permute_pair_distribution(topo, 0.5, seed=4)
        assert built.pair_weights == direct.pair_weights
        assert built.tor_to_servers == direct.tor_to_servers


class TestRoutingEquivalence:
    def test_ecmp_matches_legacy_entry_point(self):
        from repro.sim import make_routing

        topo = jellyfish(8, 4, 2, seed=1)
        built = registry.routing("ecmp", topo)
        with pytest.warns(DeprecationWarning):
            legacy = make_routing("ecmp", topo)
        assert type(built) is type(legacy)

    def test_defaults_fill_but_do_not_override(self):
        topo = jellyfish(8, 4, 2, seed=1)
        built = registry.routing("ksp:k=3", topo, k=5)
        assert built.k == 3
        filled = registry.routing("ksp", topo, k=5)
        assert filled.k == 5


class TestSpecParsing:
    def test_string_spec_types(self):
        name, params = registry.parse_spec("jellyfish:switches=8,frac=0.5,flag=true,mode=shift")
        assert name == "jellyfish"
        assert params == {"switches": 8, "frac": 0.5, "flag": True,
                          "mode": "shift"}

    def test_malformed_spec_rejected(self):
        with pytest.raises(registry.RegistryError):
            registry.parse_spec("jellyfish:switches")
        with pytest.raises(registry.RegistryError):
            registry.parse_spec(":k=4")
        with pytest.raises(registry.RegistryError):
            registry.parse_spec(12)
