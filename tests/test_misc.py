"""Miscellaneous cross-cutting behaviors."""


import pytest

from repro.analysis import format_number
from repro.flowsim import run_flow_experiment
from repro.throughput import max_concurrent_throughput
from repro.topologies import Topology, fattree, xpander
from repro.traffic import FlowSpec, TrafficMatrix


class TestTopologyDerived:
    def test_shortest_path_lengths_subset(self):
        xp = xpander(4, 4, 1)
        lengths = xp.shortest_path_lengths(sources=[0, 1])
        assert set(lengths) == {0, 1}
        assert lengths[0][0] == 0

    def test_repr_mentions_counts(self):
        xp = xpander(3, 4, 2)
        r = repr(xp)
        assert "switches=16" in r and "servers=32" in r


class TestLpUtilization:
    def test_optimum_respects_capacities(self):
        ft = fattree(4).topology
        from repro.traffic import permutation_tm

        tm = permutation_tm(ft.tors, 2, 1.0, seed=0)
        res = max_concurrent_throughput(ft, tm)
        assert all(u <= 1.0 + 1e-6 for u in res.link_utilization.values())

    def test_some_link_saturated_at_optimum(self):
        # At the LP optimum something must bind (else t could grow).
        import networkx as nx

        g = nx.path_graph(3)
        nx.set_edge_attributes(g, 1.0, "capacity")
        topo = Topology("line", g, {0: 1, 2: 1})
        res = max_concurrent_throughput(topo, TrafficMatrix({(0, 2): 1.0}))
        assert max(res.link_utilization.values()) == pytest.approx(1.0)


class TestFlowsimLimits:
    def test_max_sim_time_caps_run(self):
        ft = fattree(4).topology
        flows = [FlowSpec(0, 0, 15, 10**9, 0.0)]  # 1 GB flow, ~8 s at 1 Gbps
        from repro.flowsim import FlowLevelSimulation

        sim = FlowLevelSimulation(ft, link_rate_bps=1e9)
        stats = sim.run(flows, max_sim_time=0.01)
        assert stats.num_unfinished == 1

    def test_empty_flow_list(self):
        ft = fattree(4).topology
        stats = run_flow_experiment(ft, [])
        assert stats.num_flows == 0


class TestFormatNumberEdges:
    def test_large_numbers_compact(self):
        assert "e" in format_number(1.23456789e12) or "1.235" in format_number(1.23456789e12)

    def test_negative(self):
        assert format_number(-2.5) == "-2.5"

    def test_bool_passthrough(self):
        assert format_number(True) == "True"


class TestPackageSurface:
    def test_version_exposed(self):
        import repro

        assert repro.__version__

    def test_subpackages_importable(self):
        import repro.analysis
        import repro.cost
        import repro.flowsim
        import repro.sim
        import repro.throughput
        import repro.topologies
        import repro.traffic

    def test_all_exports_resolve(self):
        import repro.sim as sim
        import repro.throughput as thr
        import repro.topologies as topo
        import repro.traffic as tra

        for mod in (sim, thr, topo, tra):
            for name in mod.__all__:
                assert getattr(mod, name) is not None
