"""Candidate enumeration: deterministic, generous, registry-driven."""

import pytest

from repro import registry
from repro.design import DesignError, DesignTarget
from repro.design.space import enumerate_candidates


def make(**overrides):
    base = {"servers": 24, "throughput_per_server": 0.3}
    base.update(overrides)
    return DesignTarget.from_dict(base)


def test_every_family_registers_a_space():
    assert set(registry.DESIGNS.available()) == {
        "fattree", "jellyfish", "xpander", "slimfly", "longhop",
    }


def test_enumeration_is_deterministic():
    target = make()
    first = [c.spec_string for c in enumerate_candidates(target)]
    second = [c.spec_string for c in enumerate_candidates(target)]
    assert first == second
    assert len(first) > 0


def test_families_filter():
    target = make(families=["jellyfish"])
    cands = enumerate_candidates(target)
    assert cands and all(c.family == "jellyfish" for c in cands)


def test_candidate_predictions_match_built_topologies():
    """Predicted sizing is exact — or, for links, a sound upper bound.

    The cheap prune stage trusts these numbers: switch and server counts
    must be exact, and the link count may only *over*-estimate (the
    jellyfish generator can leave a port pair unmatched for small n;
    extra predicted capacity loosens the Moore ceiling, never tightens
    it, so pruning stays sound).
    """
    target = make(max_switches=20)
    for cand in enumerate_candidates(target):
        if cand.switches > 40:
            continue  # keep the build cost sane
        topo, _ = registry.build_topology(cand.spec)
        assert topo.num_switches == cand.switches, cand.spec_string
        assert topo.num_servers == cand.servers, cand.spec_string
        if cand.family == "jellyfish":
            assert topo.num_links <= cand.links, cand.spec_string
        else:
            assert topo.num_links == cand.links, cand.spec_string


def test_space_override_changes_grid():
    wide = make(
        families=["jellyfish"],
        space={"jellyfish": "jellyfish:degree_min=4,degree_max=4,sizes=2"},
    )
    cands = enumerate_candidates(wide)
    assert all(dict(c.params)["degree"] == 4 for c in cands)


def test_space_override_family_mismatch_rejected():
    target = make(families=["jellyfish"], space={"jellyfish": "fattree"})
    with pytest.raises(DesignError, match="builds a"):
        enumerate_candidates(target)


def test_jellyfish_parity_fixup():
    """n*d must be even for a d-regular graph; odd products are bumped."""
    target = make(
        families=["jellyfish"],
        space={"jellyfish": "jellyfish:degree_min=5,degree_max=5,sizes=4"},
    )
    for cand in enumerate_candidates(target):
        params = dict(cand.params)
        assert params["switches"] * params["degree"] % 2 == 0
