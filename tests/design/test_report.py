"""DesignReport: Pareto frontier, round-trips, rendering."""

import dataclasses
import json

from repro.design import design_search
from repro.design.report import DesignReport, EvaluatedDesign, _pareto_frontier
from repro.design.target import DesignTarget


def entry(spec, cost, per_server, status="optimal", meets=True):
    return EvaluatedDesign(
        spec=spec, family=spec.split(":")[0], switches=10, links=20,
        servers=20, network_degree=4, servers_per_switch=2, cost=cost,
        expandability=0.5, bound_per_server=1.0, per_server=per_server,
        status=status, iterations=1, meets_slo=meets, retained=None,
        meets_resilience=None, meets=meets,
    )


class TestParetoFrontier:
    def test_strictly_better_throughput_at_higher_cost(self):
        evaluated = [
            entry("a:1", 100.0, 0.3),
            entry("b:1", 200.0, 0.3),   # same throughput, pricier: off
            entry("c:1", 300.0, 0.6),
            entry("d:1", 400.0, 0.5),   # worse than c at higher cost: off
            entry("e:1", 500.0, 0.9),
        ]
        assert _pareto_frontier(evaluated) == ["a:1", "c:1", "e:1"]

    def test_non_optimal_entries_excluded(self):
        evaluated = [
            entry("a:1", 100.0, 0.3),
            entry("b:1", 150.0, 0.9, status="infeasible", meets=False),
        ]
        assert _pareto_frontier(evaluated) == ["a:1"]

    def test_empty(self):
        assert _pareto_frontier([]) == []


class TestRoundTrip:
    def small_report(self):
        target = DesignTarget.from_dict({
            "servers": 12, "throughput_per_server": 0.4,
            "families": ["jellyfish"], "max_switches": 10, "radix": 8,
            "sensitivity": False,
        })
        return design_search(target)

    def test_to_dict_from_dict_identity(self):
        report = self.small_report()
        doc = report.to_dict()
        rebuilt = DesignReport.from_dict(json.loads(json.dumps(doc)))
        assert rebuilt.to_dict() == doc
        assert rebuilt.best == report.best
        assert rebuilt.pareto == report.pareto

    def test_dict_is_json_clean(self):
        doc = self.small_report().to_dict()
        assert json.loads(json.dumps(doc, sort_keys=True)) == doc
        assert set(doc) == {
            "target", "complete", "feasible", "best", "pareto",
            "evaluated", "pruned", "counters", "sensitivity",
        }

    def test_evaluated_entries_are_typed(self):
        report = self.small_report()
        for e in report.evaluated:
            assert isinstance(e, EvaluatedDesign)
            assert dataclasses.asdict(e) == e.to_dict()


class TestRender:
    def test_render_mentions_the_essentials(self):
        report = self.small_report = TestRoundTrip().small_report()
        text = report.render()
        assert "candidates:" in text
        assert "pruned before LP:" in text
        if report.feasible:
            assert report.best.spec in text
        assert "evaluated designs" in text
