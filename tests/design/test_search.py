"""The staged search: determinism, pruning soundness, cancellation."""

import json
import threading

import pytest

from repro import registry
from repro.design import DesignEngine, DesignTarget, design_search
from repro.design.space import enumerate_candidates
from repro.throughput.bounds import tm_throughput_upper_bound
from repro.traffic.patterns import longest_matching_tm

SMALL = {
    "servers": 16,
    "throughput_per_server": 0.5,
    "families": ["jellyfish", "xpander"],
    "max_switches": 12,
    "radix": 8,
    "sensitivity": False,
}


def make(**overrides):
    base = dict(SMALL)
    base.update(overrides)
    return DesignTarget.from_dict(base)


def canonical(report):
    return json.dumps(report.to_dict(), sort_keys=True)


class TestDeterminism:
    def test_cold_runs_byte_identical(self):
        target = make()
        assert canonical(design_search(target)) == canonical(
            design_search(target)
        )

    def test_warm_engine_byte_identical(self):
        """The memo is invisible: warm rerun == cold run, byte for byte."""
        engine = DesignEngine()
        target = make()
        first = canonical(engine.search(target))
        second = canonical(engine.search(target))
        assert first == second
        assert second == canonical(design_search(target))

    def test_warm_engine_demand_change_is_not_stale(self):
        """The struct memo is demand-free: one warm engine serving
        targets that differ only in ``per_server_demand`` must match
        the cold answer for each (regression: a demand-scaled bound
        cached under a demand-free key pruned/passed the wrong set)."""
        engine = DesignEngine()
        base = make()
        halved = make(per_server_demand=0.5)
        warm_base = canonical(engine.search(base))
        warm_halved = canonical(engine.search(halved))
        assert warm_base == canonical(design_search(base))
        assert warm_halved == canonical(design_search(halved))

    def test_sensitivity_reuses_measurements(self):
        """With sensitivity on, the report core matches the plain run."""
        engine = DesignEngine()
        with_sens = engine.search(make(sensitivity=True))
        plain = design_search(make())
        assert with_sens.to_dict()["evaluated"] == plain.to_dict()["evaluated"]
        assert with_sens.sensitivity  # tornado rows present
        assert plain.to_dict()["sensitivity"] == []


class TestSearchOutcome:
    def test_best_is_cheapest_feasible(self):
        report = design_search(make())
        assert report.feasible and report.complete
        feasible = [e for e in report.evaluated if e.meets]
        assert report.best.cost == min(e.cost for e in feasible)
        assert report.best.meets_slo

    def test_pruning_cuts_at_least_half_before_lp(self):
        """The acceptance bar: cheap+structural pruning halves the space."""
        target = DesignTarget.from_dict({
            "servers": 48,
            "throughput_per_server": 0.3,
            "families": ["fattree", "jellyfish", "xpander"],
            "max_switches": 24,
            "radix": 10,
            "sensitivity": False,
        })
        report = design_search(target)
        counters = report.counters
        assert counters["pruned"] * 2 >= counters["candidates"]
        assert counters["evaluated"] == len(report.evaluated)

    def test_infeasible_target_reports_cleanly(self):
        report = design_search(make(servers=100_000))
        assert not report.feasible
        assert report.best is None
        assert report.evaluated == []
        assert report.pruned  # everything died in the cheap stage

    def test_resilience_floor_checked(self):
        report = design_search(make(
            resilience={"failures": "links:fraction=0.1,seed=1",
                        "min_retained": 0.5},
        ))
        for entry in report.evaluated:
            if entry.meets_slo:
                assert entry.retained is not None
                assert entry.meets == (
                    entry.meets_slo and entry.meets_resilience
                )
            else:
                assert entry.retained is None

    def test_expandability_floor_prunes_structurally(self):
        strict = design_search(make(min_expandability=0.99))
        assert not strict.feasible
        assert any(p.reason == "expandability" for p in strict.pruned)

    def test_should_stop_yields_partial_report(self):
        report = design_search(make(), should_stop=lambda: True)
        assert not report.complete
        assert report.evaluated == []
        assert report.to_dict()["sensitivity"] == []


class TestPruningSoundness:
    """Every pruned candidate provably cannot meet the target.

    Exhaustive check on a small space: re-derive each pruned
    candidate's true feasibility the expensive way (build + LP) and
    assert the prune verdict was correct.  This is the guarantee that
    lets the search skip LPs at all.
    """

    @pytest.mark.parametrize("overrides", [
        {},
        {"throughput_per_server": 0.8},
        {"fraction": 0.5, "throughput_per_server": 0.7},
        {"max_cost": 15_000.0},
    ])
    def test_pruned_candidates_truly_infeasible(self, overrides):
        target = make(**overrides)
        report = design_search(target)
        candidates = {
            c.spec_string: c for c in enumerate_candidates(target)
        }
        assert report.pruned, "pick targets that actually prune"
        for entry in report.pruned:
            cand = candidates[entry.spec]
            if entry.reason == "max_switches":
                assert cand.switches > target.max_switches
                continue
            if entry.reason == "radix":
                ports = cand.network_degree + cand.servers_per_switch
                assert ports > target.radix
                continue
            topo, _ = registry.build_topology(cand.spec)
            if entry.reason == "servers":
                assert topo.num_servers < target.servers
                continue
            if entry.reason == "cost":
                from repro.cost import PORT_COSTS, topology_port_cost

                assert (
                    topology_port_cost(topo, PORT_COSTS[target.port_cost])
                    > target.max_cost
                )
                continue
            assert entry.reason == "throughput_bound", entry
            # The claim under test: the *actual* LP optimum misses the
            # SLO whenever a bound said it must.
            tm = longest_matching_tm(topo, target.fraction, seed=target.seed)
            outcome = registry.solver(target.solver).solve(
                topo, tm, per_server_demand=target.per_server_demand
            )
            per_server = min(
                1.0,
                (outcome.result.per_server if outcome.ok else 0.0),
            )
            assert per_server < target.throughput_per_server + 1e-6, (
                f"{entry.spec} pruned by {entry.stage}/{entry.reason} "
                f"but solves to {per_server}"
            )

    def test_structural_bound_dominates_lp(self):
        """The exact capacity bound really is an upper bound on the LP."""
        target = make()
        report = design_search(target)
        for entry in report.evaluated:
            if entry.status == "optimal":
                assert entry.per_server <= entry.bound_per_server + 1e-6


class TestMemoThreadSafety:
    def test_concurrent_churn_does_not_corrupt(self):
        """The engine's LRU is shared by HTTP handler threads and job
        workers; interleaved get/put (move_to_end + popitem under
        eviction pressure) must neither raise nor lose the dict."""
        from repro.design.search import _Memo

        memo = _Memo(capacity=8)
        errors = []

        def worker(offset):
            try:
                for i in range(2000):
                    key = f"k{(i + offset) % 32}"
                    memo.get(key)
                    memo.put(key, {"i": i})
            except Exception as exc:  # noqa: BLE001 - the assertion
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(o,)) for o in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert len(memo._data) <= 8


class TestCounters:
    def test_counters_account_for_every_candidate(self):
        target = make()
        report = design_search(target)
        c = report.counters
        assert c["candidates"] >= c["pruned"] + c["evaluated"]
        assert sum(c["pruned_by_reason"].values()) == c["pruned"]
        resilience_evals = sum(
            1 for e in report.evaluated if e.retained is not None
        )
        assert c["lp_solves"] == c["evaluated"] + resilience_evals
