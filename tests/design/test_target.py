"""DesignTarget validation, round-trips, and the published schema."""

import pytest

from repro.design import (
    DesignError,
    DesignTarget,
    ResilienceTarget,
    design_target_schema,
)


def make(**overrides):
    base = {"servers": 48, "throughput_per_server": 0.3}
    base.update(overrides)
    return DesignTarget.from_dict(base)


class TestValidation:
    def test_minimal_target(self):
        t = make()
        assert t.servers == 48
        assert t.fraction == 1.0
        assert t.sensitivity is True

    @pytest.mark.parametrize("overrides", [
        {"servers": 0},
        {"servers": -3},
        {"throughput_per_server": 0.0},
        {"throughput_per_server": 1.5},
        {"fraction": 0.0},
        {"fraction": 1.2},
        {"radix": 1},
        {"max_switches": 0},
        {"max_cost": -1.0},
        {"min_expandability": 2.0},
        {"sensitivity_rel": 0.0},
        {"port_cost": "nonsense"},
        {"families": ["not-a-family"]},
        {"solver": 7},
    ])
    def test_bad_values_rejected(self, overrides):
        with pytest.raises(DesignError):
            make(**overrides)

    def test_unknown_keys_rejected(self):
        with pytest.raises(DesignError, match="unknown"):
            make(throughput=0.3)

    def test_resilience_target_strict(self):
        t = make(resilience={"failures": "links:fraction=0.1"})
        assert isinstance(t.resilience, ResilienceTarget)
        assert t.resilience.min_retained == 0.9
        with pytest.raises(DesignError):
            make(resilience={"failures": "links:fraction=0.1", "oops": 1})
        with pytest.raises(DesignError):
            make(resilience={"failures": "", "min_retained": 0.5})
        with pytest.raises(DesignError):
            make(resilience={"failures": "links", "min_retained": 1.5})


class TestRoundTrips:
    def test_to_dict_from_dict_identity(self):
        t = make(
            families=["jellyfish", "fattree"],
            space={"jellyfish": {"degree_min": 4, "degree_max": 6}},
            resilience={"failures": "links:fraction=0.1", "min_retained": 0.8},
            min_expandability=0.2,
            name="x",
        )
        assert DesignTarget.from_dict(t.to_dict()) == t

    def test_replace_revalidates(self):
        t = make()
        assert t.replace(servers=10).servers == 10
        with pytest.raises(DesignError):
            t.replace(servers=-1)

    def test_replace_keeps_resilience(self):
        t = make(resilience={"failures": "links:fraction=0.1"})
        assert t.replace(seed=3).resilience == t.resilience


class TestSchema:
    def test_schema_covers_every_field(self):
        schema = design_target_schema()
        assert schema["$id"] == "repro/design-target/1"
        from dataclasses import fields

        declared = {f.name for f in fields(DesignTarget)}
        assert set(schema["properties"]) == declared
        assert schema["required"] == ["servers", "throughput_per_server"]

    def test_schema_enums_track_registries(self):
        schema = design_target_schema()
        families = schema["properties"]["families"]["items"]["enum"]
        assert "jellyfish" in families and "fattree" in families
        assert "static" in schema["properties"]["port_cost"]["enum"]
