"""The /v1 mount and the legacy-path deprecation shims.

Every endpooint lives canonically under ``/v1``; the unversioned paths
from the service's first release keep answering — same handler, same
payload — but carry a ``Deprecation: true`` header plus a ``Link``
pointing at the successor, and are tallied separately so operators can
see who still uses them.
"""

import pytest

from repro import registry
from repro.api import ApiServer, ApiService, HttpClient, InProcessClient


@pytest.fixture()
def client():
    return InProcessClient(ApiService())


def test_v1_paths_are_canonical(client):
    resp = client.get("/v1/healthz").raise_for_status()
    assert "Deprecation" not in resp.headers


def test_legacy_path_answers_with_deprecation_header(client):
    legacy = client.get("/healthz").raise_for_status()
    assert legacy.headers["Deprecation"] == "true"
    assert legacy.headers["Link"] == '</v1/healthz>; rel="successor-version"'
    assert legacy.json["ok"] is True


def test_legacy_post_reaches_same_handler(client):
    body = {"topology": "jellyfish:switches=10,degree=4,servers=2"}
    legacy = client.post("/throughput", dict(body)).raise_for_status()
    v1 = client.post("/v1/throughput", dict(body)).raise_for_status()
    assert legacy.headers["Deprecation"] == "true"
    assert (
        legacy.json["results"][0]["per_server_throughput"]
        == v1.json["results"][0]["per_server_throughput"]
    )


def test_trailing_slash_normalized(client):
    assert client.get("/v1/healthz/").status == 200
    assert client.get("/healthz/").headers.get("Deprecation") == "true"


def test_deprecated_requests_counted_separately(client):
    client.get("/healthz")
    client.get("/v1/healthz")
    requests = client.get("/v1/context").json["requests"]
    assert requests["deprecated"].get("GET /v1/healthz") == 1
    assert requests["by_endpoint"]["GET /v1/healthz"] >= 2


def test_context_registry_filter(client):
    resp = client.get("/v1/context?registry=solvers").raise_for_status()
    assert resp.json["registry"] == "solvers"
    assert set(resp.json["entries"]) == set(registry.SOLVERS.available())
    assert "registries" not in resp.json  # the manifest is not included


def test_context_registry_filter_unknown_name(client):
    resp = client.get("/v1/context?registry=widgets")
    assert resp.status == 400
    assert resp.json["error"]["code"] == "bad_spec"
    assert "solvers" in resp.json["error"]["details"]["registries"]


def test_schema_documents_jobs(client):
    body = client.get("/v1/schema").raise_for_status().json
    assert body["api_version"] == "v1"
    jobs = body["jobs"]
    assert jobs["states"] == [
        "pending", "running", "completed", "failed", "cancelled",
    ]
    assert "POST /v1/jobs" in jobs["endpoints"]
    assert "DELETE /v1/jobs/<id>" in jobs["endpoints"]


def test_404_lists_v1_paths(client):
    resp = client.get("/v1/frobnicate")
    assert resp.status == 404
    paths = resp.json["error"]["details"]["paths"]
    assert "/v1/sweep" in paths
    assert "/v1/jobs/<id>" in paths


def test_deprecation_header_over_the_wire():
    with ApiServer(ApiService(), port=0) as server:
        http = HttpClient(server.host, server.port)
        try:
            legacy = http.get("/healthz").raise_for_status()
            assert legacy.headers["Deprecation"] == "true"
            v1 = http.get("/v1/healthz").raise_for_status()
            assert "Deprecation" not in v1.headers
            # DELETE is wired through the HTTP front end too.
            resp = http.delete("/v1/jobs/nope")
            assert resp.status == 404
            # Query strings survive the wire path.
            filtered = http.get("/v1/context?registry=routings")
            assert filtered.json["registry"] == "routings"
        finally:
            http.close()
