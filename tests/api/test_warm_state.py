"""Warm-state behaviour: the acceptance criterion of the service.

A second request naming the same topology spec must hit the warm layers
— the built topology, the exact-LP context (persistent ArcTable), and
the process-wide shared path cache — which is asserted here through the
obs counters the caches emit (``api.topology.hits``,
``api.context.hits``, ``pathcache.shared_hits``), not through private
attributes.  Byte-identical queries short-circuit into the
content-addressed result memo; ``"warm": false`` bypasses everything.
"""

import threading

import pytest

from repro import obs
from repro.api import ApiService, InProcessClient, WarmState
from repro.perf import clear_shared_caches

JELLYFISH = "jellyfish:switches=12,degree=4,servers=2"


@pytest.fixture()
def client():
    clear_shared_caches()
    yield InProcessClient(ApiService())
    clear_shared_caches()


def _counter(name):
    snap = obs.snapshot().get(name)
    return snap["value"] if snap else 0.0


def test_second_request_hits_warm_state_via_obs_counters(client):
    with obs.session():
        first = client.post(
            "/throughput", {"topology": JELLYFISH, "fraction": 1.0}
        ).raise_for_status()
        assert first.json["warm"]["topology"] == "miss"
        assert first.json["warm"]["context"] == "miss"
        assert _counter("api.topology.misses") == 1
        assert _counter("api.context.misses") == 1

        # Different fraction: skips the result memo, so the solve runs
        # again — against every warm layer.
        second = client.post(
            "/throughput", {"topology": JELLYFISH, "fraction": 0.5}
        ).raise_for_status()
        assert second.json["warm"]["topology"] == "hit"
        assert second.json["warm"]["context"] == "hit"
        assert _counter("api.topology.hits") >= 1
        assert _counter("api.context.hits") >= 1
        assert _counter("pathcache.shared_hits") >= 1
        assert _counter("api.requests") == 2


def test_identical_request_served_from_result_memo(client):
    body = {"topology": JELLYFISH, "fraction": 0.8}
    first = client.post("/throughput", dict(body)).raise_for_status()
    second = client.post("/throughput", dict(body)).raise_for_status()
    assert first.json["results"][0]["cached"] is False
    assert second.json["results"][0]["cached"] is True
    assert second.json["warm"]["results_cached"] == 1
    assert (
        second.json["results"][0]["per_server_throughput"]
        == first.json["results"][0]["per_server_throughput"]
    )


def test_cold_mode_bypasses_every_warm_layer(client):
    body = {"topology": JELLYFISH, "warm": False}
    first = client.post("/throughput", dict(body)).raise_for_status()
    second = client.post("/throughput", dict(body)).raise_for_status()
    for resp in (first, second):
        assert resp.json["warm"]["enabled"] is False
        assert resp.json["warm"]["topology"] == "miss"
        assert resp.json["results"][0]["cached"] is False
    stats = client.service.state.stats()
    assert stats["topologies"]["entries"] == 0
    assert stats["solver_contexts"]["entries"] == 0
    assert stats["results"]["entries"] == 0


def test_warm_and_cold_agree(client):
    warm = client.post(
        "/throughput", {"topology": JELLYFISH}
    ).raise_for_status()
    cold = client.post(
        "/throughput", {"topology": JELLYFISH, "warm": False}
    ).raise_for_status()
    assert warm.json["results"][0]["per_server_throughput"] == pytest.approx(
        cold.json["results"][0]["per_server_throughput"]
    )
    assert warm.json["topology"] == cold.json["topology"]


def test_context_reports_cache_stats(client):
    client.post("/throughput", {"topology": JELLYFISH}).raise_for_status()
    caches = client.get("/context").raise_for_status().json["caches"]
    assert caches["topologies"]["entries"] == 1
    assert caches["solver_contexts"]["entries"] == 1
    assert caches["results"]["entries"] == 1
    assert caches["path_cache"]["entries"] == 1


def test_failures_key_separates_warm_entries(client):
    healthy = client.post(
        "/throughput", {"topology": JELLYFISH}
    ).raise_for_status()
    degraded = client.post(
        "/throughput",
        {"topology": JELLYFISH, "failures": "links:fraction=0.1,seed=3"},
    )
    assert degraded.json["warm"]["topology"] == "miss"
    stats = client.service.state.stats()
    assert stats["topologies"]["entries"] == 2
    if degraded.status == 200:
        assert (
            degraded.json["topology"]["links"]
            < healthy.json["topology"]["links"]
        )


def test_warm_state_topology_identity():
    state = WarmState()
    a, hit_a = state.topology(JELLYFISH)
    b, hit_b = state.topology(JELLYFISH)
    assert (hit_a, hit_b) == (False, True)
    assert a is b
    # Equivalent mapping spec resolves to the same cache entry.
    c, hit_c = state.topology(
        {"family": "jellyfish", "switches": 12, "degree": 4, "servers": 2}
    )
    assert hit_c and c is a


def test_result_memo_lru_eviction():
    state = WarmState(max_results=2)
    for i in range(4):
        state.result_put(f"key-{i}", {"i": i})
    assert state.result_get("key-0") is None
    assert state.result_get("key-3") == {"i": 3}
    assert state.stats()["results"]["evictions"] == 2


def test_incremental_contexts_survive_across_requests(client):
    """The ISSUE's acceptance: repeated requests with the incremental
    solver warm-start off prior requests — visible through the
    ``solver.warm_start.*`` counters and per-point flags."""
    from repro.solvers import reset_warm_start_stats

    reset_warm_start_stats()
    with obs.session():
        first = client.post(
            "/throughput",
            {"topology": JELLYFISH, "solver": "highs-incremental",
             "fraction": 1.0, "seed": 1},
        ).raise_for_status()
        assert first.json["warm"]["context"] == "miss"
        assert first.json["results"][0]["warm_started"] is False
        assert _counter("solver.warm_start.miss") == 1
        assert _counter("api.incremental.misses") == 1

        # Different demand (scaled), same support: a warm re-solve off
        # the model the *previous request* built.
        second = client.post(
            "/throughput",
            {"topology": JELLYFISH, "solver": "highs-incremental",
             "fraction": 1.0, "seed": 1, "per_server_demand": 0.5},
        ).raise_for_status()
        assert second.json["warm"]["context"] == "hit"
        assert _counter("api.incremental.hits") == 1

    exact = client.post(
        "/throughput",
        {"topology": JELLYFISH, "solver": "highs-exact", "fraction": 1.0,
         "seed": 1},
    ).raise_for_status()
    assert first.json["results"][0]["per_server_throughput"] == pytest.approx(
        exact.json["results"][0]["per_server_throughput"], abs=1e-9
    )


def test_context_surfaces_warm_start_counters_and_incremental_stats(client):
    from repro.solvers import reset_warm_start_stats

    reset_warm_start_stats()
    for fraction in (0.5, 1.0, 0.5):
        client.post(
            "/throughput",
            {"topology": JELLYFISH, "solver": "highs-incremental",
             "fraction": fraction, "seed": 2},
        ).raise_for_status()
    caches = client.get("/context").raise_for_status().json["caches"]
    warm_start = caches["warm_start"]
    assert warm_start["models_built"] >= 1
    assert warm_start["miss"] >= 1
    incremental = caches["incremental_contexts"]
    assert incremental["entries"] == 1
    (ctx,) = incremental["contexts"]
    assert ctx["models_built"] >= 1
    assert ctx["cold_solves"] >= 1
    assert ctx["highspy"] in (True, False)
    # The third request repeated fraction 0.5 → served from the result
    # memo, so solves stay at two and both were cold (new supports).
    assert ctx["cold_solves"] + ctx["warm_solves"] == 2


def test_incremental_cold_bypass(client):
    body = {"topology": JELLYFISH, "solver": "highs-incremental",
            "warm": False}
    resp = client.post("/throughput", dict(body)).raise_for_status()
    assert resp.json["warm"]["enabled"] is False
    assert resp.json["results"][0]["warm_started"] is False
    assert resp.json["results"][0]["basis_reused"] is False
    stats = client.service.state.stats()
    assert stats["incremental_contexts"]["entries"] == 0


def test_concurrent_requests_share_one_warm_entry(client):
    statuses = []
    lock = threading.Lock()
    barrier = threading.Barrier(4)

    def worker(i):
        barrier.wait(timeout=10)
        resp = client.post(
            "/throughput",
            {"topology": JELLYFISH, "fraction": 0.2 + 0.2 * i},
        )
        with lock:
            statuses.append(resp.status)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert statuses == [200, 200, 200, 200]
    stats = client.service.state.stats()
    assert stats["topologies"]["entries"] == 1
    assert stats["solver_contexts"]["entries"] == 1
