"""The /schema document must track the dataclass and the registries."""

from repro import registry
from repro.api import experiment_spec_schema
from repro.api.schema import SCHEMA_ID
from repro.harness.spec import ENGINES, ExperimentSpec


def test_schema_properties_match_dataclass_fields():
    schema = experiment_spec_schema()
    assert set(schema["properties"]) == set(
        ExperimentSpec.__dataclass_fields__
    )
    assert schema["required"] == ["topology"]
    assert schema["additionalProperties"] is False
    assert schema["$id"] == SCHEMA_ID


def test_enums_are_read_from_live_registries():
    props = experiment_spec_schema()["properties"]
    assert props["topology"]["properties"]["family"]["enum"] == list(
        registry.TOPOLOGIES.available()
    )
    workload = props["workload"]["properties"]
    assert workload["pattern"]["enum"] == list(registry.TRAFFIC.available())
    assert workload["solver"]["enum"] == list(registry.SOLVERS.available())
    assert props["routing"]["enum"] == list(registry.ROUTINGS.available())
    assert props["engine"]["enum"] == list(ENGINES)


def test_nullable_fields_accept_null():
    props = experiment_spec_schema()["properties"]
    for name in ("server_link_rate_bps", "short_flow_bytes", "max_sim_time"):
        assert "null" in props[name]["type"], name
    assert "null" in props["failures"]["type"]


def test_schema_is_json_serializable():
    import json

    blob = json.dumps(experiment_spec_schema())
    assert "ExperimentSpec" in blob
