"""Happy-path endpoint behaviour through the typed client facade.

These tests drive :class:`ReproClient` over the in-process transport —
the exact dispatch path the HTTP server uses minus the socket — so both
the typed result objects and (via ``.raw``) the wire payload shapes are
what a network client receives.  Error-contract details live in
``test_errors.py``; the raw transport is exercised directly only where
the facade deliberately adds nothing (request-id plumbing).
"""

import pytest

import repro
from repro.api import ApiService, InProcessClient, ReproClient
from repro.harness.spec import ExperimentSpec
from repro.perf import clear_shared_caches

JELLYFISH = "jellyfish:switches=12,degree=4,servers=2"
XPANDER = "xpander:degree=4,lift=3,servers=2"


@pytest.fixture()
def client():
    clear_shared_caches()
    yield ReproClient.in_process()
    clear_shared_caches()


def test_healthz(client):
    resp = client.transport.get("/v1/healthz")
    assert resp.status == 200
    assert resp.json["ok"] is True
    assert resp.request_id


def test_context_manifest(client):
    ctx = client.context()
    assert ctx.service == "repro.api/2"
    assert ctx.library_version == repro.__version__
    assert ctx.raw["spec_hash_version"] == repro.SPEC_HASH_VERSION
    for registry_name in ("topologies", "traffic", "routings", "failures",
                          "solvers", "designs"):
        assert ctx.registries[registry_name], registry_name
    assert "POST /v1/throughput" in ctx.raw["endpoints"]
    assert set(ctx.caches) == {
        "topologies", "solver_contexts", "results", "path_cache",
        "incremental_contexts", "colgen_contexts", "warm_start",
    }
    assert set(ctx.caches["warm_start"]) >= {"hit", "miss"}
    assert ctx.limits["max_body_bytes"] > 0
    assert ctx.limits["max_design_candidates"] > 0
    assert ctx.raw["result_cache"] is None
    # The request counters include this very request.
    again = client.context()
    assert again.raw["requests"]["by_endpoint"]["GET /v1/context"] >= 1


def test_schema_endpoint(client):
    schemas = client.schema()
    assert schemas["schema"]["title"] == "ExperimentSpec"
    assert schemas["design"]["title"] == "DesignTarget"


def test_throughput_single_fraction(client):
    ev = client.throughput(JELLYFISH)
    assert ev.topology["switches"] == 12
    assert ev.topology["connected"] is True
    assert ev.topology["diameter"] >= 1
    assert ev.topology["avg_path_length"] > 1
    (point,) = ev.results
    assert point["status"] == "optimal"
    assert 0 < ev.per_server() <= 1.0
    assert point["fraction"] == 1.0
    assert ev.warm["enabled"] is True


def test_throughput_multiple_fractions_monotone(client):
    ev = client.throughput(JELLYFISH, fractions=[0.3, 0.6, 1.0])
    values = [r["per_server_throughput"] for r in ev.results]
    assert len(values) == 3
    # Fewer participating servers → no less per-server throughput.
    assert values[0] >= values[1] >= values[2]
    assert ev.per_server(0.3) == values[0]


def test_throughput_with_failures(client):
    from repro.api import ApiError

    try:
        degraded = client.throughput(
            JELLYFISH, failures="links:fraction=0.1,seed=3"
        )
    except ApiError as exc:
        assert exc.status == 422  # degraded may disconnect pairs
        return
    healthy = client.throughput(JELLYFISH)
    assert degraded.per_server() <= healthy.per_server() + 1e-9


def test_throughput_alternate_solver(client):
    exact = client.throughput(XPANDER, solver="highs-exact")
    batched = client.throughput(XPANDER)
    assert exact.per_server() == pytest.approx(batched.per_server())
    # Both exact backends share one warm LP context per topology.
    assert exact.warm["context"] == "miss"
    assert batched.warm["context"] == "hit"


def test_throughput_non_context_solver(client):
    approx = client.throughput(XPANDER, solver="mcf-approx:epsilon=0.05")
    assert approx.warm["context"] is None  # no ArcTable involved
    exact = client.throughput(XPANDER)
    assert approx.per_server() == pytest.approx(exact.per_server(), rel=0.15)


def test_simulate_lp_engine(client):
    body = {
        "topology": {"family": "jellyfish", "switches": 10, "degree": 4,
                     "servers": 2},
        "workload": {"pattern": "longest_matching", "fraction": 0.5},
        "engine": "lp",
    }
    sim = client.simulate(body)
    assert sim.ok
    assert 0 < sim.metrics["per_server_throughput"] <= 1.0
    assert sim.spec_hash == ExperimentSpec.from_dict(body).content_hash()


def test_sweep_grid(client):
    sw = client.sweep(
        defaults={
            "topology": {"family": "jellyfish", "switches": 10,
                         "degree": 4, "servers": 2},
            "workload": {"pattern": "longest_matching"},
            "engine": "lp",
        },
        grid={"workload.fraction": [0.4, 0.8]},
    )
    assert sw.counts["total"] == 2
    assert sw.counts["failed"] == 0
    # Memo-vs-computed split rides on every sweep response.
    assert sw.computed == 2
    assert sw.cached == 0
    assert len(sw.records) == 2
    fractions = sorted(
        r["spec"]["workload"]["fraction"] for r in sw.records
    )
    assert fractions == [0.4, 0.8]


def test_compare_ranks_topologies(client):
    cmp_ = client.compare([JELLYFISH, XPANDER], fraction=0.7)
    assert len(cmp_.results) == 2
    names = [e["topology"]["name"] for e in cmp_.results]
    assert cmp_.best in names
    assert cmp_.ranking()[0] == cmp_.best
    best_entry = next(
        e for e in cmp_.results if e["topology"]["name"] == cmp_.best
    )
    assert best_entry["relative_to_best"] == pytest.approx(1.0)
    for entry in cmp_.results:
        assert entry["mean_per_server_throughput"] > 0
        assert entry["relative_to_best"] <= 1.0 + 1e-9


def test_request_id_echoed():
    raw = InProcessClient(ApiService())
    resp = raw.get("/v1/healthz", request_id="abc-123")
    assert resp.json["request_id"] == "abc-123"


def test_request_id_generated_when_missing():
    raw = InProcessClient(ApiService())
    first = raw.get("/v1/healthz").request_id
    second = raw.get("/v1/healthz").request_id
    assert first and second and first != second
