"""Happy-path endpoint behaviour through the in-process client.

These tests drive :meth:`ApiService.dispatch` directly — the exact code
path the HTTP server uses minus the socket — so every payload shape
asserted here is what a network client receives.
"""

import pytest

import repro
from repro.api import ApiService, InProcessClient
from repro.harness.spec import ExperimentSpec
from repro.perf import clear_shared_caches

JELLYFISH = "jellyfish:switches=12,degree=4,servers=2"
XPANDER = "xpander:degree=4,lift=3,servers=2"


@pytest.fixture()
def client():
    clear_shared_caches()
    yield InProcessClient(ApiService())
    clear_shared_caches()


def test_healthz(client):
    resp = client.get("/v1/healthz")
    assert resp.status == 200
    assert resp.json["ok"] is True
    assert resp.request_id


def test_context_manifest(client):
    resp = client.get("/v1/context").raise_for_status()
    body = resp.json
    assert body["service"] == "repro.api/2"
    assert body["library_version"] == repro.__version__
    assert body["spec_hash_version"] == repro.SPEC_HASH_VERSION
    for registry_name in ("topologies", "traffic", "routings", "failures",
                          "solvers"):
        assert body["registries"][registry_name], registry_name
    assert "POST /v1/throughput" in body["endpoints"]
    assert set(body["caches"]) == {
        "topologies", "solver_contexts", "results", "path_cache",
        "incremental_contexts", "warm_start",
    }
    assert set(body["caches"]["warm_start"]) >= {"hit", "miss"}
    assert body["limits"]["max_body_bytes"] > 0
    assert body["result_cache"] is None
    # The request counters include this very request.
    again = client.get("/v1/context").json
    assert again["requests"]["by_endpoint"]["GET /v1/context"] >= 1


def test_schema_endpoint(client):
    resp = client.get("/v1/schema").raise_for_status()
    assert resp.json["schema"]["title"] == "ExperimentSpec"


def test_throughput_single_fraction(client):
    resp = client.post("/v1/throughput", {"topology": JELLYFISH})
    assert resp.status == 200
    body = resp.json
    assert body["topology"]["switches"] == 12
    assert body["topology"]["connected"] is True
    assert body["topology"]["diameter"] >= 1
    assert body["topology"]["avg_path_length"] > 1
    (point,) = body["results"]
    assert point["status"] == "optimal"
    assert 0 < point["per_server_throughput"] <= 1.0
    assert point["fraction"] == 1.0
    assert body["warm"]["enabled"] is True


def test_throughput_multiple_fractions_monotone(client):
    resp = client.post(
        "/v1/throughput",
        {"topology": JELLYFISH, "fractions": [0.3, 0.6, 1.0]},
    ).raise_for_status()
    values = [r["per_server_throughput"] for r in resp.json["results"]]
    assert len(values) == 3
    # Fewer participating servers → no less per-server throughput.
    assert values[0] >= values[1] >= values[2]


def test_throughput_with_failures(client):
    resp = client.post(
        "/v1/throughput",
        {"topology": JELLYFISH, "failures": "links:fraction=0.1,seed=3"},
    )
    assert resp.status in (200, 422)  # degraded may disconnect pairs
    if resp.status == 200:
        healthy = client.post(
            "/v1/throughput", {"topology": JELLYFISH}
        ).raise_for_status()
        assert (
            resp.json["results"][0]["per_server_throughput"]
            <= healthy.json["results"][0]["per_server_throughput"] + 1e-9
        )


def test_throughput_alternate_solver(client):
    exact = client.post(
        "/v1/throughput", {"topology": XPANDER, "solver": "highs-exact"}
    ).raise_for_status()
    batched = client.post(
        "/v1/throughput", {"topology": XPANDER}
    ).raise_for_status()
    assert exact.json["results"][0]["per_server_throughput"] == pytest.approx(
        batched.json["results"][0]["per_server_throughput"]
    )
    # Both exact backends share one warm LP context per topology.
    assert exact.json["warm"]["context"] == "miss"
    assert batched.json["warm"]["context"] == "hit"


def test_throughput_non_context_solver(client):
    resp = client.post(
        "/v1/throughput",
        {"topology": XPANDER, "solver": "mcf-approx:epsilon=0.05"},
    ).raise_for_status()
    assert resp.json["warm"]["context"] is None  # no ArcTable involved
    exact = client.post("/v1/throughput", {"topology": XPANDER}).raise_for_status()
    assert resp.json["results"][0]["per_server_throughput"] == pytest.approx(
        exact.json["results"][0]["per_server_throughput"], rel=0.15
    )


def test_simulate_lp_engine(client):
    body = {
        "topology": {"family": "jellyfish", "switches": 10, "degree": 4,
                     "servers": 2},
        "workload": {"pattern": "longest_matching", "fraction": 0.5},
        "engine": "lp",
    }
    resp = client.post("/v1/simulate", dict(body)).raise_for_status()
    record = resp.json["record"]
    assert record["status"] == "ok"
    assert 0 < record["metrics"]["per_server_throughput"] <= 1.0
    assert resp.json["spec_hash"] == ExperimentSpec.from_dict(
        body
    ).content_hash()


def test_sweep_grid(client):
    resp = client.post(
        "/v1/sweep",
        {
            "defaults": {
                "topology": {"family": "jellyfish", "switches": 10,
                             "degree": 4, "servers": 2},
                "workload": {"pattern": "longest_matching"},
                "engine": "lp",
            },
            "grid": {"workload.fraction": [0.4, 0.8]},
        },
    ).raise_for_status()
    assert resp.json["counts"]["total"] == 2
    assert resp.json["counts"]["failed"] == 0
    # Memo-vs-computed split rides on every sweep response.
    assert resp.json["computed"] == 2
    assert resp.json["cached"] == 0
    assert len(resp.json["records"]) == 2
    fractions = sorted(
        r["spec"]["workload"]["fraction"] for r in resp.json["records"]
    )
    assert fractions == [0.4, 0.8]


def test_compare_ranks_topologies(client):
    resp = client.post(
        "/v1/compare",
        {"topologies": [JELLYFISH, XPANDER], "fraction": 0.7},
    ).raise_for_status()
    body = resp.json
    assert len(body["results"]) == 2
    names = [e["topology"]["name"] for e in body["results"]]
    assert body["best"] in names
    best_entry = next(
        e for e in body["results"] if e["topology"]["name"] == body["best"]
    )
    assert best_entry["relative_to_best"] == pytest.approx(1.0)
    for entry in body["results"]:
        assert entry["mean_per_server_throughput"] > 0
        assert entry["relative_to_best"] <= 1.0 + 1e-9


def test_request_id_echoed(client):
    resp = client.get("/v1/healthz", request_id="abc-123")
    assert resp.json["request_id"] == "abc-123"


def test_request_id_generated_when_missing(client):
    first = client.get("/v1/healthz").request_id
    second = client.get("/v1/healthz").request_id
    assert first and second and first != second
