"""The async jobs layer: submit → poll → result, cancellation, limits.

The acceptance contract from the sharding work: a completed job's
records match the synchronous ``/v1/sweep`` output for the same
document (modulo volatile timing fields), and cancellation leaves a
resumable result cache behind.
"""

import time

import pytest

from repro.api import ApiService, InProcessClient

SWEEP_DOC = {
    "defaults": {
        "topology": {"family": "jellyfish", "switches": 8, "degree": 3,
                     "servers": 2, "seed": 1},
        "workload": {"pattern": "longest_matching", "solver": "mcf-approx"},
        "engine": "lp",
        "seed": 1,
    },
    "grid": {"workload.fraction": [0.4, 0.7, 1.0]},
}

TERMINAL = ("completed", "failed", "cancelled")


@pytest.fixture()
def client():
    return InProcessClient(ApiService())


def _poll(client, job_id, timeout_s=120.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        job = client.get(f"/v1/jobs/{job_id}").raise_for_status().json["job"]
        if job["state"] in TERMINAL:
            return job
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} did not settle in {timeout_s}s")


def _volatile_pinned(record):
    return {**record, "wall_clock_s": 0.0, "attempts": 1, "cached": False}


def test_job_completes_and_matches_sync_sweep(client):
    resp = client.post("/v1/jobs", {**SWEEP_DOC, "options": {"shards": 2}})
    assert resp.status == 202
    job = resp.json["job"]
    assert job["state"] in ("pending", "running")
    assert job["points"] == 3
    assert job["shards"] == 2
    assert job["counts"] is None  # not terminal yet

    done = _poll(client, job["id"])
    assert done["state"] == "completed"
    assert done["counts"]["total"] == 3
    assert done["counts"]["failed"] == 0
    assert done["progress"]["done"] == 3
    assert done["finished_at_unix"] >= done["started_at_unix"]
    assert done["cached"] + done["computed"] == 3

    sync = client.post("/v1/sweep", dict(SWEEP_DOC)).raise_for_status().json
    assert [_volatile_pinned(r) for r in done["records"]] == [
        _volatile_pinned(r) for r in sync["records"]
    ]


def test_job_listing_and_poll_without_records(client):
    job_id = client.post("/v1/jobs", dict(SWEEP_DOC)).json["job"]["id"]
    listed = client.get("/v1/jobs").raise_for_status().json["jobs"]
    assert job_id in [j["id"] for j in listed]
    assert all("records" not in j for j in listed)
    _poll(client, job_id)
    slim = client.get(f"/v1/jobs/{job_id}?records=false").json["job"]
    assert slim["state"] == "completed"
    assert "records" not in slim


def test_unknown_job_is_404(client):
    for resp in (client.get("/v1/jobs/nope"), client.delete("/v1/jobs/nope")):
        assert resp.status == 404
        assert resp.json["error"]["code"] == "not_found"


def test_job_detail_unsupported_method_is_405(client):
    resp = client.request("PUT", "/v1/jobs/anything")
    assert resp.status == 405
    assert resp.json["error"]["details"]["allowed"] == ["DELETE", "GET"]


def test_malformed_submission_creates_no_job(client):
    resp = client.post("/v1/jobs", {"defaults": {"engine": "warp"}})
    assert resp.status == 400
    assert resp.json["error"]["code"] == "bad_spec"
    assert client.get("/v1/jobs").json["jobs"] == []
    resp = client.post("/v1/jobs", {**SWEEP_DOC, "options": "fast"})
    assert resp.status == 400


def test_job_point_limit():
    client = InProcessClient(ApiService(max_job_points=2))
    resp = client.post("/v1/jobs", dict(SWEEP_DOC))
    assert resp.status == 400
    assert resp.json["error"]["code"] == "too_many_points"
    assert resp.json["error"]["details"]["max_job_points"] == 2


def test_cancel_leaves_resumable_cache(tmp_path):
    service = ApiService(cache_dir=str(tmp_path / "cache"))
    client = InProcessClient(service)
    doc = {
        **SWEEP_DOC,
        "grid": {
            "workload.fraction": [round(0.3 + 0.05 * i, 2) for i in range(8)]
        },
    }
    job_id = client.post(
        "/v1/jobs", {**doc, "options": {"shards": 1}}
    ).json["job"]["id"]
    # Wait for at least one completed point, then cancel.
    deadline = time.monotonic() + 120.0
    while time.monotonic() < deadline:
        job = client.get(f"/v1/jobs/{job_id}?records=false").json["job"]
        if job["state"] in TERMINAL or job["progress"].get("done", 0) >= 1:
            break
        time.sleep(0.02)
    cancelled = client.delete(f"/v1/jobs/{job_id}").raise_for_status()
    assert cancelled.json["job"]["cancel_requested"] is True
    settled = _poll(client, job_id)
    assert settled["state"] in ("cancelled", "completed")

    # Every point that DID finish is in the shared result cache, so a
    # re-submission resumes instead of recomputing.
    finished = settled["counts"]["done"]
    assert len(service.cache) >= settled["counts"]["ok"]
    rerun = _poll(
        client, client.post("/v1/jobs", dict(doc)).json["job"]["id"]
    )
    assert rerun["state"] == "completed"
    assert rerun["counts"]["total"] == 8
    assert rerun["counts"]["failed"] == 0
    if finished and settled["counts"]["ok"]:
        assert rerun["cached"] >= 1


def test_idempotent_cancel_after_completion(client):
    job_id = client.post("/v1/jobs", dict(SWEEP_DOC)).json["job"]["id"]
    _poll(client, job_id)
    resp = client.delete(f"/v1/jobs/{job_id}").raise_for_status()
    assert resp.json["job"]["state"] == "completed"


def test_context_reports_job_stats(client):
    job_id = client.post("/v1/jobs", dict(SWEEP_DOC)).json["job"]["id"]
    _poll(client, job_id)
    stats = client.get("/v1/context").json["jobs"]
    assert stats["jobs"] >= 1
    assert stats["by_state"].get("completed", 0) >= 1
