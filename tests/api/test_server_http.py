"""The real HTTP server: sockets, headers, framing, concurrency.

Everything semantic is covered through the in-process client; these
tests only assert what the wire adds — an ephemeral-port server is
booted once per module and exercised with stdlib ``http.client``.
"""

import json
import threading

import pytest

from repro.api import ApiServer, ApiService, HttpClient

JELLYFISH = "jellyfish:switches=12,degree=4,servers=2"


@pytest.fixture(scope="module")
def server():
    srv = ApiServer(
        ApiService(max_body_bytes=256 * 1024), port=0, workers=4
    ).start()
    yield srv
    srv.stop()


@pytest.fixture()
def client(server):
    c = HttpClient(server.host, server.port)
    yield c
    c.close()


def test_ephemeral_port_resolved(server):
    assert server.port != 0
    assert server.url.startswith("http://127.0.0.1:")


def test_healthz_over_http(client):
    resp = client.get("/healthz").raise_for_status()
    assert resp.json["ok"] is True
    assert resp.headers["Content-Type"] == "application/json"


def test_request_id_header_roundtrip(client):
    resp = client.post(
        "/throughput", {"topology": JELLYFISH}, request_id="wire-7"
    ).raise_for_status()
    assert resp.headers["X-Request-Id"] == "wire-7"
    assert resp.json["request_id"] == "wire-7"


def test_request_id_generated_and_echoed(client):
    resp = client.get("/context").raise_for_status()
    assert resp.headers["X-Request-Id"] == resp.json["request_id"]
    assert len(resp.json["request_id"]) >= 8


def test_content_length_is_exact(client):
    resp = client.get("/healthz")
    assert int(resp.headers["Content-Length"]) == len(
        json.dumps(resp.json).encode()
    )


def test_trailing_slash_and_query_string_normalized(client):
    assert client.get("/healthz/").status == 200
    assert client.get("/healthz?probe=1").status == 200


def test_error_statuses_over_http(client):
    assert client.get("/nope").status == 404
    assert client.post("/schema").status == 405
    assert client.post("/throughput", b"{broken").status == 400


def test_oversized_body_rejected_without_reading(client):
    resp = client.post("/throughput", b"x" * (512 * 1024))
    assert resp.status == 413
    assert resp.json["error"]["code"] == "payload_too_large"
    # The connection stays usable (the client may transparently
    # reconnect if the server dropped it mid-upload).
    assert client.get("/healthz").status == 200


def test_concurrent_clients_all_served(server):
    statuses, lock = [], threading.Lock()
    barrier = threading.Barrier(4)

    def worker(i):
        c = HttpClient(server.host, server.port)
        try:
            barrier.wait(timeout=10)
            resp = c.post(
                "/throughput",
                {"topology": JELLYFISH, "fraction": 0.25 * (i + 1)},
            )
            with lock:
                statuses.append(resp.status)
        finally:
            c.close()

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert statuses == [200, 200, 200, 200]


def test_context_manager_lifecycle():
    with ApiServer(ApiService(), port=0, workers=1) as srv:
        c = HttpClient(srv.host, srv.port)
        assert c.get("/healthz").status == 200
        c.close()
