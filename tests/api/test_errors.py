"""The HTTP error contract: every failure mode → documented status + body.

Covers the full table in :mod:`repro.api.errors`: malformed JSON,
malformed specs (unknown topology/solver/parameters), infeasible LPs
(via a registered always-infeasible fake solver — the paper's
max-concurrent LP is never naturally infeasible), oversized payloads,
unknown paths, and wrong methods.  Every error body must carry the
uniform ``{"error": {code, message, request_id, ...}}`` envelope, with
the request id mirrored at the top level.
"""

import pytest

from repro import registry
from repro.api import ApiError, ApiService, InProcessClient, classify_exception
from repro.harness.spec import SpecError
from repro.registry import RegistryError
from repro.solvers.base import SolveOutcome, SolveStatus
from repro.throughput.errors import InfeasibleError

JELLYFISH = "jellyfish:switches=10,degree=4,servers=2"


@pytest.fixture()
def client():
    return InProcessClient(ApiService(max_body_bytes=64 * 1024))


def _assert_error(resp, status, code):
    assert resp.status == status
    assert resp.json["error"]["code"] == code
    assert resp.json["error"]["message"]
    assert resp.json["request_id"]
    # The id lives inside the envelope too, so the error object is
    # self-contained when logged or forwarded.
    assert resp.json["error"]["request_id"] == resp.json["request_id"]


def test_malformed_json(client):
    _assert_error(client.post("/v1/throughput", b"{not json"), 400, "bad_json")


def test_non_object_body(client):
    _assert_error(client.post("/v1/throughput", b"[1, 2, 3]"), 400, "bad_json")


def test_non_utf8_body(client):
    _assert_error(client.post("/v1/throughput", b"\xff\xfe{}"), 400, "bad_json")


def test_missing_topology_key(client):
    _assert_error(client.post("/v1/throughput", {}), 400, "bad_spec")


def test_unknown_topology_family(client):
    resp = client.post("/v1/throughput", {"topology": "hypercube:dim=4"})
    _assert_error(resp, 400, "bad_spec")
    assert "hypercube" in resp.json["error"]["message"]


def test_bad_topology_parameter(client):
    resp = client.post(
        "/v1/throughput", {"topology": "jellyfish:bogus_knob=1"}
    )
    _assert_error(resp, 400, "bad_spec")


def test_unknown_solver(client):
    resp = client.post(
        "/v1/throughput", {"topology": JELLYFISH, "solver": "cplex"}
    )
    _assert_error(resp, 400, "bad_spec")
    assert "highs-batched" in resp.json["error"]["message"]


def test_bad_fractions(client):
    for fractions in ([], [0.0], [1.5], ["half"]):
        resp = client.post(
            "/v1/throughput", {"topology": JELLYFISH, "fractions": fractions}
        )
        _assert_error(resp, 400, "bad_spec")


def test_simulate_unknown_field(client):
    resp = client.post(
        "/v1/simulate", {"topology": {"family": "jellyfish"}, "wlrkoad": {}}
    )
    _assert_error(resp, 400, "bad_spec")


def test_sweep_empty_document(client):
    _assert_error(client.post("/v1/sweep", {"options": {}}), 400, "bad_spec")


def test_sweep_too_many_points():
    client = InProcessClient(ApiService(max_sweep_points=3))
    resp = client.post(
        "/v1/sweep",
        {
            "defaults": {"topology": {"family": "jellyfish"}, "engine": "lp"},
            "grid": {"workload.fraction": [0.2, 0.4, 0.6, 0.8]},
        },
    )
    _assert_error(resp, 400, "too_many_points")
    assert resp.json["error"]["details"]["max_sweep_points"] == 3


def test_compare_needs_two_topologies(client):
    resp = client.post("/v1/compare", {"topologies": [JELLYFISH]})
    _assert_error(resp, 400, "bad_spec")


def test_oversized_payload(client):
    padding = "x" * (128 * 1024)
    resp = client.post("/v1/throughput", '{"topology": "%s"}' % padding)
    _assert_error(resp, 413, "payload_too_large")
    assert resp.json["error"]["details"]["max_body_bytes"] == 64 * 1024


def test_unknown_path(client):
    resp = client.get("/v1/topologies")
    _assert_error(resp, 404, "not_found")
    assert "/v1/throughput" in resp.json["error"]["details"]["paths"]


def test_method_not_allowed(client):
    resp = client.post("/v1/context")
    _assert_error(resp, 405, "method_not_allowed")
    assert resp.json["error"]["details"]["allowed"] == ["GET"]
    resp = client.get("/v1/throughput")
    _assert_error(resp, 405, "method_not_allowed")
    assert resp.json["error"]["details"]["allowed"] == ["POST"]


class _AlwaysInfeasible:
    """A fake backend: the max-concurrent LP is never naturally
    infeasible (t=0 is always a solution), so the 422 path needs one."""

    def solve(self, topology, tm, per_server_demand=1.0):
        error = InfeasibleError(
            "forced for testing",
            formulation="exact",
            status_code=2,
            iterations=7,
            context={"topology": topology.name, "demands": tm.num_flows},
        )
        return SolveOutcome(
            backend="always-infeasible",
            status=SolveStatus.INFEASIBLE,
            error=error,
            iterations=7,
            message=str(error),
        )


def test_infeasible_solve_maps_to_422(client, monkeypatch):
    monkeypatch.setitem(
        registry.SOLVERS._factories, "always-infeasible",
        lambda: _AlwaysInfeasible(),
    )
    resp = client.post(
        "/v1/throughput", {"topology": JELLYFISH, "solver": "always-infeasible"}
    )
    _assert_error(resp, 422, "solver_failure")
    (point,) = resp.json["error"]["details"]["results"]
    assert point["status"] == "infeasible"
    assert point["error"]["failure"] == "InfeasibleError"
    assert point["error"]["formulation"] == "exact"
    assert point["error"]["status_code"] == 2
    assert point["error"]["iterations"] == 7
    assert "topology" in point["error"]["context"]


def test_compare_all_infeasible_maps_to_422(client, monkeypatch):
    monkeypatch.setitem(
        registry.SOLVERS._factories, "always-infeasible",
        lambda: _AlwaysInfeasible(),
    )
    resp = client.post(
        "/v1/compare",
        {
            "topologies": [JELLYFISH, "xpander:degree=4,lift=3,servers=2"],
            "solver": "always-infeasible",
        },
    )
    _assert_error(resp, 422, "solver_failure")


def test_classify_exception_table():
    assert classify_exception(ApiError(418, "teapot", "x")).status == 418
    assert classify_exception(SpecError("bad")).status == 400
    assert classify_exception(RegistryError("bad")).status == 400
    assert classify_exception(ValueError("bad")).status == 400
    assert classify_exception(TypeError("bad")).status == 400
    infeasible = InfeasibleError("no", formulation="paths")
    classified = classify_exception(infeasible)
    assert classified.status == 422
    assert classified.details["failure"] == "InfeasibleError"
    internal = classify_exception(RuntimeError("boom"))
    assert internal.status == 500
    assert internal.code == "internal"
    assert "traceback" not in str(internal.payload()).lower()
