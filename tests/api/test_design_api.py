"""The inverse-design surface: POST /v1/design, design jobs, schemas."""

import pytest

from repro.api import ApiService, InProcessClient, ReproClient
from repro.design import design_search
from repro.design.target import DesignTarget
from repro.perf import clear_shared_caches

TARGET = {
    "servers": 16,
    "throughput_per_server": 0.5,
    "families": ["jellyfish", "xpander"],
    "max_switches": 12,
    "radix": 8,
    "sensitivity": False,
}


@pytest.fixture()
def service():
    clear_shared_caches()
    yield ApiService()
    clear_shared_caches()


@pytest.fixture()
def client(service):
    return InProcessClient(service)


@pytest.fixture()
def facade(client):
    return ReproClient(client)


class TestDesignEndpoint:
    def test_sync_design_matches_library(self, client):
        resp = client.post("/v1/design", {"target": TARGET}).raise_for_status()
        report = resp.json["report"]
        library = design_search(DesignTarget.from_dict(TARGET)).to_dict()
        assert report == library
        assert report["feasible"] is True
        assert report["counters"]["pruned"] > 0

    def test_missing_target_is_bad_request(self, client):
        resp = client.post("/v1/design", {})
        assert resp.status == 400
        assert resp.json["error"]["code"] == "bad_spec"
        assert "target" in resp.json["error"]["message"]

    def test_invalid_target_is_bad_spec(self, client):
        resp = client.post("/v1/design", {"target": {"servers": -1}})
        assert resp.status == 400
        assert resp.json["error"]["code"] == "bad_spec"

    def test_oversized_space_redirected_to_jobs(self, service):
        small = ApiService(max_design_candidates=1)
        resp = InProcessClient(small).post("/v1/design", {"target": TARGET})
        assert resp.status == 400
        assert resp.json["error"]["code"] == "too_many_points"
        assert "design" in resp.json["error"]["message"]
        assert resp.json["error"]["details"]["max_design_candidates"] == 1

    def test_warm_service_is_report_invisible(self, client):
        first = client.post("/v1/design", {"target": TARGET}).json["report"]
        second = client.post("/v1/design", {"target": TARGET}).json["report"]
        assert first == second


class TestDesignJobs:
    def test_design_job_round_trip(self, facade):
        job = facade.submit_job(kind="design", target=TARGET)
        assert job.kind == "design"
        payload = facade.wait_job(job.id, timeout_s=120)
        assert payload["state"] == "completed"
        report = payload["report"]
        assert report["complete"] is True
        assert report == facade.design(TARGET).to_dict()

    def test_oversized_design_job_rejected(self):
        small = ApiService(max_job_points=1)
        resp = InProcessClient(small).post(
            "/v1/jobs", {"kind": "design", "target": TARGET}
        )
        assert resp.status == 400
        assert resp.json["error"]["code"] == "too_many_points"
        assert resp.json["error"]["details"]["max_job_points"] == 1

    def test_records_false_returns_slim_report(self, facade):
        job = facade.submit_job(kind="design", target=TARGET)
        facade.wait_job(job.id, timeout_s=120)
        slim = facade.job(job.id, records=False)["report"]
        full = facade.job(job.id)["report"]
        assert set(slim) == {"feasible", "complete", "best", "counters"}
        assert slim["feasible"] == full["feasible"]
        assert full["evaluated"]  # the full payload still has everything

    def test_unknown_kind_rejected(self, client):
        resp = client.post("/v1/jobs", {"kind": "nonsense"})
        assert resp.status == 400
        assert "design, sweep" in resp.json["error"]["message"]

    def test_design_job_bad_target_is_synchronous_400(self, client):
        resp = client.post(
            "/v1/jobs", {"kind": "design", "target": {"servers": 0}}
        )
        assert resp.status == 400
        assert resp.json["error"]["code"] == "bad_spec"

    def test_summary_shape(self, facade):
        job = facade.submit_job(kind="design", target=TARGET)
        summary = job.summary
        assert summary["kind"] == "design"
        assert summary["points"] is None  # points are a sweep concept
        facade.wait_job(job.id, timeout_s=120)


class TestDiscovery:
    def test_context_lists_designs_registry(self, facade):
        ctx = facade.context()
        assert "jellyfish" in ctx.registries["designs"]
        assert ctx.limits["max_design_candidates"] > 0

    def test_schema_serves_design_target(self, facade):
        schemas = facade.schema()
        assert schemas["design"]["title"] == "DesignTarget"
        assert "design" in schemas["jobs"]["kinds"]
