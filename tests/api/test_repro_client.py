"""The ReproClient facade: typed results, typed errors, GET retry.

Semantics run through the in-process transport; the HTTP-specific
pieces (retry/backoff on transient connection failures, the facade over
a live server — the ISSUE's "same answer via ReproClient.design()
against a live /v1 server" check) get a real socket.
"""

import http.client
import threading

import pytest

from repro.api import (
    ApiError,
    ApiServer,
    ApiService,
    CompareResult,
    HttpClient,
    InProcessClient,
    ReproClient,
    ServiceContext,
    SweepResult,
    ThroughputEvaluation,
)
from repro.design import DesignReport
from repro.perf import clear_shared_caches

JELLYFISH = "jellyfish:switches=12,degree=4,servers=2"
XPANDER = "xpander:degree=4,lift=3,servers=2"
TARGET = {
    "servers": 16,
    "throughput_per_server": 0.5,
    "families": ["jellyfish", "xpander"],
    "max_switches": 12,
    "radix": 8,
    "sensitivity": False,
}


@pytest.fixture()
def facade():
    clear_shared_caches()
    yield ReproClient.in_process()
    clear_shared_caches()


class TestTypedResults:
    def test_context(self, facade):
        ctx = facade.context()
        assert isinstance(ctx, ServiceContext)
        assert ctx.service == "repro.api/2"
        assert ctx.api_version == "v1"
        assert "topologies" in ctx.registries
        assert ctx.raw["endpoints"]

    def test_throughput(self, facade):
        ev = facade.throughput(JELLYFISH, fractions=[0.5, 1.0])
        assert isinstance(ev, ThroughputEvaluation)
        assert ev.per_server(0.5) >= ev.per_server(1.0)
        assert ev.per_server() == ev.per_server(0.5)  # first result
        with pytest.raises(KeyError):
            ev.per_server(0.123)

    def test_simulate(self, facade):
        sim = facade.simulate({
            "topology": {"family": "jellyfish", "switches": 10,
                         "degree": 4, "servers": 2},
            "workload": {"pattern": "longest_matching", "fraction": 0.5},
            "engine": "lp",
        })
        assert sim.ok
        assert 0 < sim.metrics["per_server_throughput"] <= 1.0
        assert sim.spec_hash

    def test_sweep(self, facade):
        sw = facade.sweep(
            defaults={
                "topology": {"family": "jellyfish", "switches": 10,
                             "degree": 4, "servers": 2},
                "workload": {"pattern": "longest_matching"},
                "engine": "lp",
            },
            grid={"workload.fraction": [0.4, 0.8]},
        )
        assert isinstance(sw, SweepResult)
        assert sw.counts["total"] == 2
        assert len(sw.records) == 2

    def test_compare(self, facade):
        cmp_ = facade.compare([JELLYFISH, XPANDER], fraction=0.7)
        assert isinstance(cmp_, CompareResult)
        assert cmp_.best == cmp_.ranking()[0]
        assert len(cmp_.ranking()) == 2

    def test_design(self, facade):
        report = facade.design(TARGET)
        assert isinstance(report, DesignReport)
        assert report.feasible and report.complete
        assert report.best.spec in report.pareto

    def test_sweep_jobs(self, facade):
        job = facade.submit_job({
            "defaults": {
                "topology": {"family": "jellyfish", "switches": 10,
                             "degree": 4, "servers": 2},
                "workload": {"pattern": "longest_matching"},
                "engine": "lp",
            },
            "grid": {"workload.fraction": [0.3, 0.9]},
        })
        assert job.kind == "sweep"
        payload = facade.wait_job(job.id, timeout_s=120)
        assert payload["state"] == "completed"
        assert len(payload["records"]) == 2
        assert any(j.id == job.id for j in facade.jobs())

    def test_cancel_job_returns_handle(self, facade):
        job = facade.submit_job(kind="design", target=TARGET)
        handle = facade.cancel_job(job.id)
        assert handle.id == job.id
        payload = facade.wait_job(job.id, timeout_s=120)
        assert payload["state"] in ("cancelled", "completed")

    def test_design_job_requires_target(self, facade):
        with pytest.raises(ValueError, match="target"):
            facade.submit_job(kind="design")


class TestTypedErrors:
    def test_api_error_carries_envelope(self, facade):
        with pytest.raises(ApiError) as excinfo:
            facade.throughput("not-a-family:x=1")
        err = excinfo.value
        assert err.status == 400
        assert err.code == "bad_spec"
        assert err.request_id
        assert "not-a-family" in str(err)

    def test_api_error_carries_details(self):
        small = ReproClient(
            InProcessClient(ApiService(max_design_candidates=1))
        )
        with pytest.raises(ApiError) as excinfo:
            small.design(TARGET)
        err = excinfo.value
        assert err.status == 400
        assert err.code == "too_many_points"
        assert err.details["max_design_candidates"] == 1

    def test_wait_job_timeout(self, facade):
        job = facade.submit_job(kind="design", target=TARGET)
        with pytest.raises(TimeoutError):
            facade.wait_job(job.id, timeout_s=0.0, poll_interval_s=0.01)
        facade.wait_job(job.id, timeout_s=120)


class TestOverHttp:
    @pytest.fixture(scope="class")
    def server(self):
        srv = ApiServer(ApiService(), port=0, workers=2).start()
        yield srv
        srv.stop()

    def test_design_matches_in_process(self, server, facade):
        http = ReproClient.http(server.host, server.port)
        try:
            over_wire = http.design(TARGET)
        finally:
            http.close()
        assert over_wire.to_dict() == facade.design(TARGET).to_dict()

    def test_get_retries_transient_failures(self, server):
        client = HttpClient(server.host, server.port, backoff_s=0.0)
        client.get("/v1/healthz").raise_for_status()
        # Poison the pooled socket: the next GET hits a dead connection
        # and must transparently reconnect-and-retry.
        client._conn.sock.close()
        assert client.get("/v1/healthz").status == 200
        client.close()

    def test_get_retry_gives_up_against_dead_server(self):
        dead = ApiServer(ApiService(), port=0, workers=1).start()
        host, port = dead.host, dead.port
        dead.stop()
        client = HttpClient(host, port, get_retries=2, backoff_s=0.001)
        with pytest.raises(OSError):
            client.get("/v1/healthz")
        client.close()

    def test_post_not_blindly_retried(self, server):
        client = HttpClient(server.host, server.port)
        client.get("/v1/healthz")
        client._conn.sock.close()
        # One reconnect-and-resend for a request that never went out is
        # allowed; it must still succeed exactly once.
        resp = client.post("/v1/throughput", {"topology": JELLYFISH})
        assert resp.status == 200
        client.close()


class _Response:
    status = 200
    headers = {"Content-Type": "application/json"}

    def read(self):
        return b'{"ok": true}'


class _ScriptedConn:
    """Sends always succeed; the first ``fail_reads`` reads die."""

    def __init__(self, fail_reads: int):
        self.fail_reads = fail_reads
        self.sends = []
        self.reads = 0

    def request(self, method, path, body=None, headers=None):
        self.sends.append((method, path))

    def getresponse(self):
        self.reads += 1
        if self.reads <= self.fail_reads:
            raise http.client.RemoteDisconnected("server closed")
        return _Response()

    def close(self):
        pass


class TestRetrySplit:
    """Send failures and response-read failures retry differently:
    a request that never went out is safe to resend for any method,
    but once sent only idempotent GETs may be repeated."""

    def _client(self, monkeypatch, conn):
        client = HttpClient("localhost", 1, get_retries=2, backoff_s=0.0)
        client._conn = conn
        monkeypatch.setattr(client, "_reconnect", lambda: None)
        return client

    def test_post_that_died_mid_response_is_never_resent(self, monkeypatch):
        conn = _ScriptedConn(fail_reads=99)
        client = self._client(monkeypatch, conn)
        with pytest.raises(http.client.RemoteDisconnected):
            client.post("/v1/jobs", {"kind": "design"})
        assert conn.sends == [("POST", "/v1/jobs")]  # exactly one send

    def test_get_that_died_mid_response_is_retried(self, monkeypatch):
        conn = _ScriptedConn(fail_reads=1)
        client = self._client(monkeypatch, conn)
        assert client.get("/v1/healthz").status == 200
        assert conn.sends == [("GET", "/v1/healthz")] * 2
