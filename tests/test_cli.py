"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestTopologyCommand:
    def test_xpander(self, capsys):
        rc = main(["topology", "xpander", "--degree", "4", "--lift", "5",
                   "--servers", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "xpander(d=4,lift=5,shift)" in out
        assert "switches" in out and "25" in out

    def test_fattree(self, capsys):
        rc = main(["topology", "fattree", "--k", "4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "fat-tree(k=4)" in out

    def test_oversubscribed_fattree(self, capsys):
        rc = main(["topology", "fattree", "--k", "4", "--core-fraction", "0.5"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "core=0.50" in out

    def test_slimfly(self, capsys):
        rc = main(["topology", "slimfly", "--q", "5", "--servers", "2"])
        assert rc == 0
        assert "slimfly(q=5)" in capsys.readouterr().out

    def test_longhop(self, capsys):
        rc = main(["topology", "longhop", "--n", "4", "--degree", "5",
                   "--servers", "1"])
        assert rc == 0
        assert "longhop" in capsys.readouterr().out

    def test_jellyfish(self, capsys):
        rc = main(["topology", "jellyfish", "--switches", "12", "--degree",
                   "4", "--servers", "2"])
        assert rc == 0
        assert "jellyfish" in capsys.readouterr().out

    def test_unknown_kind_rejected(self):
        with pytest.raises(SystemExit):
            main(["topology", "torus"])


class TestThroughputCommand:
    def test_sweep_runs(self, capsys):
        rc = main([
            "throughput", "jellyfish", "--switches", "12", "--degree", "4",
            "--servers", "2", "--fractions", "0.5,1.0",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0.5" in out and "fraction" in out

    def test_paths_solver(self, capsys):
        rc = main([
            "throughput", "xpander", "--degree", "4", "--lift", "4",
            "--servers", "2", "--fractions", "0.5", "--solver", "paths",
        ])
        assert rc == 0


class TestSimulateCommand:
    def test_small_simulation(self, capsys):
        rc = main([
            "simulate", "xpander", "--degree", "4", "--lift", "4",
            "--servers", "2", "--routing", "hyb", "--pattern", "a2a",
            "--fraction", "0.5", "--rate", "500",
            "--measure-start", "0.005", "--measure-end", "0.015",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "avg_fct_ms" in out


class TestSweepCommand:
    LP_SWEEP = {
        "defaults": {
            "topology": {"family": "jellyfish", "switches": 8, "degree": 3,
                         "servers": 1, "seed": 0},
            "engine": "lp",
            "workload": {"pattern": "longest_matching"},
        },
        "grid": {"workload.fraction": [0.5, 1.0]},
    }

    def test_sweep_runs_caches_and_persists(self, tmp_path, capsys):
        spec_file = tmp_path / "sweep.json"
        spec_file.write_text(json.dumps(self.LP_SWEEP))
        cache_dir = tmp_path / "cache"
        results = tmp_path / "runs.jsonl"
        rc = main([
            "sweep", str(spec_file), "--jobs", "1",
            "--cache-dir", str(cache_dir), "--results", str(results),
            "--quiet",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "2 computed, 0 cached, 0 failed" in out
        assert "per_server_throughput" in out
        assert len(results.read_text().splitlines()) == 2

        # Re-running the same file is served entirely from cache.
        rc = main([
            "sweep", str(spec_file), "--jobs", "1",
            "--cache-dir", str(cache_dir), "--quiet",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 computed, 2 cached, 0 failed" in out

    def test_unloadable_spec_file_is_a_clean_error(self, tmp_path, capsys):
        missing = main(["sweep", str(tmp_path / "nope.json"), "--quiet"])
        bad = tmp_path / "broken.json"
        bad.write_text("{broken")
        malformed = main(["sweep", str(bad), "--quiet"])
        invalid = tmp_path / "warp.json"
        invalid.write_text(json.dumps({
            "topology": {"family": "fattree", "k": 4},
            "routing": "warp",
            "workload": {"pattern": "permute", "load": 0.2},
        }))
        unknown = main(["sweep", str(invalid), "--quiet"])
        err = capsys.readouterr().err
        assert missing == malformed == unknown == 2
        assert err.count("sweep: cannot load") == 3
        assert "unknown routing 'warp'" in err

    def test_failed_point_sets_exit_code(self, tmp_path, capsys):
        spec_file = tmp_path / "bad.json"
        spec_file.write_text(json.dumps({
            "topology": {"family": "fattree", "k": 5},
            "workload": {"pattern": "permute", "fraction": 1.0, "load": 0.2},
            "engine": "packet",
            "measure_start": 0.005,
            "measure_end": 0.02,
        }))
        rc = main(["sweep", str(spec_file), "--jobs", "1", "--no-cache",
                   "--retries", "0", "--quiet"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "TopologyError" in out


class TestCostCommand:
    def test_table_only(self, capsys):
        rc = main(["cost"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "215" in out and "370" in out

    def test_with_topology(self, capsys):
        rc = main(["cost", "--kind", "fattree", "--k", "4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "total port cost" in out


class TestCablingCommand:
    def test_xpander_report(self, capsys):
        rc = main(["cabling", "xpander", "--degree", "4", "--lift", "5",
                   "--servers", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "bundles" in out

    def test_fattree_report(self, capsys):
        rc = main(["cabling", "fattree", "--k", "4"])
        assert rc == 0

    def test_jellyfish_report(self, capsys):
        rc = main(["cabling", "jellyfish", "--switches", "12", "--degree",
                   "4", "--servers", "2"])
        assert rc == 0
