"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestTopologyCommand:
    def test_xpander(self, capsys):
        rc = main(["topology", "xpander", "--degree", "4", "--lift", "5",
                   "--servers", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "xpander(d=4,lift=5,shift)" in out
        assert "switches" in out and "25" in out

    def test_fattree(self, capsys):
        rc = main(["topology", "fattree", "--k", "4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "fat-tree(k=4)" in out

    def test_oversubscribed_fattree(self, capsys):
        rc = main(["topology", "fattree", "--k", "4", "--core-fraction", "0.5"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "core=0.50" in out

    def test_slimfly(self, capsys):
        rc = main(["topology", "slimfly", "--q", "5", "--servers", "2"])
        assert rc == 0
        assert "slimfly(q=5)" in capsys.readouterr().out

    def test_longhop(self, capsys):
        rc = main(["topology", "longhop", "--n", "4", "--degree", "5",
                   "--servers", "1"])
        assert rc == 0
        assert "longhop" in capsys.readouterr().out

    def test_jellyfish(self, capsys):
        rc = main(["topology", "jellyfish", "--switches", "12", "--degree",
                   "4", "--servers", "2"])
        assert rc == 0
        assert "jellyfish" in capsys.readouterr().out

    def test_unknown_kind_rejected(self):
        with pytest.raises(SystemExit):
            main(["topology", "torus"])


class TestThroughputCommand:
    def test_sweep_runs(self, capsys):
        rc = main([
            "throughput", "jellyfish", "--switches", "12", "--degree", "4",
            "--servers", "2", "--fractions", "0.5,1.0",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0.5" in out and "fraction" in out

    def test_paths_solver(self, capsys):
        rc = main([
            "throughput", "xpander", "--degree", "4", "--lift", "4",
            "--servers", "2", "--fractions", "0.5", "--solver", "paths",
        ])
        assert rc == 0


class TestSimulateCommand:
    def test_small_simulation(self, capsys):
        rc = main([
            "simulate", "xpander", "--degree", "4", "--lift", "4",
            "--servers", "2", "--routing", "hyb", "--pattern", "a2a",
            "--fraction", "0.5", "--rate", "500",
            "--measure-start", "0.005", "--measure-end", "0.015",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "avg_fct_ms" in out


class TestCostCommand:
    def test_table_only(self, capsys):
        rc = main(["cost"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "215" in out and "370" in out

    def test_with_topology(self, capsys):
        rc = main(["cost", "--kind", "fattree", "--k", "4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "total port cost" in out


class TestCablingCommand:
    def test_xpander_report(self, capsys):
        rc = main(["cabling", "xpander", "--degree", "4", "--lift", "5",
                   "--servers", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "bundles" in out

    def test_fattree_report(self, capsys):
        rc = main(["cabling", "fattree", "--k", "4"])
        assert rc == 0

    def test_jellyfish_report(self, capsys):
        rc = main(["cabling", "jellyfish", "--switches", "12", "--degree",
                   "4", "--servers", "2"])
        assert rc == 0
