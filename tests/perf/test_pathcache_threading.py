"""Concurrent-access regression tests for the shared path cache.

The cache was multiprocess-safe by construction (content addressing,
atomic writes) but only thread-safe by luck before the ``repro.api``
threaded server made concurrent in-process access routine.  These tests
hammer the registry LRU and one cache's lazy structures from many
threads and assert the invariants the locks are meant to provide:

* equal graphs resolve to one shared ``PathCache`` instance;
* lazily computed structures are identical across threads (no reader
  ever sees a half-built table);
* eviction under a tiny LRU bound never corrupts the registry or
  raises from a concurrent get/insert.
"""

import threading

import pytest

from repro.perf import (
    PathCache,
    clear_shared_caches,
    shared_cache_stats,
    shared_path_cache,
)
from repro.perf import pathcache as pathcache_mod
from repro.topologies import jellyfish

THREADS = 8


@pytest.fixture(autouse=True)
def _fresh_registry():
    clear_shared_caches()
    yield
    clear_shared_caches()


def _run_threads(worker, n=THREADS):
    """Run ``worker(i)`` on n threads; re-raise the first failure."""
    errors = []
    barrier = threading.Barrier(n)

    def wrapped(i):
        try:
            barrier.wait(timeout=10)
            worker(i)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=wrapped, args=(i,)) for i in range(n)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    if errors:
        raise errors[0]


def test_equal_graphs_share_one_instance_across_threads():
    topo = jellyfish(12, 4, 2, seed=1)
    seen = []
    lock = threading.Lock()

    def worker(_i):
        cache = shared_path_cache(topo)
        with lock:
            seen.append(cache)

    _run_threads(worker)
    assert len(seen) == THREADS
    assert all(c is seen[0] for c in seen)
    assert shared_cache_stats()["entries"] == 1


def test_lazy_structures_consistent_under_concurrency():
    topo = jellyfish(12, 4, 2, seed=2)
    reference = PathCache(topo.graph)
    ref_tables = reference.ecmp_tables()
    ref_dist = reference.distances()
    results = []
    lock = threading.Lock()

    def worker(i):
        cache = shared_path_cache(topo)
        tables = cache.ecmp_tables()
        dist = cache.distances()
        paths = cache.k_shortest_paths(
            cache.nodes[0], cache.nodes[-1], k=2 + i % 3
        )
        with lock:
            results.append((tables, dist, paths))

    _run_threads(worker)
    for tables, dist, paths in results:
        assert tables == ref_tables
        assert (dist == ref_dist).all()
        # Every thread's k prefix agrees with the reference enumeration.
        ref_paths = reference.k_shortest_paths(
            reference.nodes[0], reference.nodes[-1], k=len(paths)
        )
        assert paths == ref_paths


def test_eviction_under_concurrent_distinct_topologies(monkeypatch):
    monkeypatch.setattr(pathcache_mod, "_REGISTRY_MAX", 2)
    topologies = [jellyfish(10, 4, 2, seed=s) for s in range(THREADS)]

    def worker(i):
        # Each thread cycles through every topology, forcing constant
        # insert/evict churn on a 2-entry LRU.
        for topo in topologies[i:] + topologies[:i]:
            cache = shared_path_cache(topo)
            assert cache.diameter() >= 1

    _run_threads(worker)
    assert shared_cache_stats()["entries"] <= 2


def test_stats_snapshot_is_consistent():
    topo = jellyfish(10, 4, 2, seed=3)
    shared_path_cache(topo).distances()
    stats = shared_cache_stats()
    assert stats["entries"] == 1
    assert stats["with_distances"] == 1
    assert stats["with_ecmp_tables"] == 0
