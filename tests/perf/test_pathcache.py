"""Tests for the shared per-topology path cache."""

import networkx as nx
import numpy as np
import pytest

from repro.perf import (
    PathCache,
    clear_shared_caches,
    shared_path_cache,
    topology_content_hash,
)
from repro.perf.pathcache import _REGISTRY, _REGISTRY_MAX
from repro.throughput.paths import ecmp_next_hops, k_shortest_paths
from repro.topologies import fattree, jellyfish


@pytest.fixture(autouse=True)
def _fresh_registry():
    clear_shared_caches()
    yield
    clear_shared_caches()


def disconnected_graph():
    g = nx.Graph()
    g.add_edge(0, 1)
    g.add_edge(1, 2)
    g.add_edge(10, 11)  # separate component
    return g


class TestDistances:
    @pytest.mark.parametrize(
        "graph",
        [
            jellyfish(num_switches=12, network_ports=4, servers_per_switch=2, seed=1).graph,
            fattree(4).topology.graph,
            nx.cycle_graph(9),
        ],
    )
    def test_matches_networkx(self, graph):
        cache = PathCache(graph)
        d = cache.distances()
        for src, lengths in nx.all_pairs_shortest_path_length(graph):
            for dst, hops in lengths.items():
                assert d[cache.node_index[src], cache.node_index[dst]] == hops

    def test_disconnected_pairs_are_inf(self):
        cache = PathCache(disconnected_graph())
        assert cache.distance(0, 2) == 2
        assert cache.distance(0, 10) == float("inf")
        with pytest.raises(ValueError):
            cache.diameter()
        with pytest.raises(ValueError):
            cache.average_path_length()

    def test_diameter_and_apl_match_networkx(self):
        g = jellyfish(num_switches=14, network_ports=4, servers_per_switch=2, seed=5).graph
        cache = PathCache(g)
        assert cache.diameter() == nx.diameter(g)
        assert cache.average_path_length() == pytest.approx(
            nx.average_shortest_path_length(g), abs=1e-12
        )

    def test_hop_distance_distribution_sums_to_one(self):
        cache = PathCache(fattree(4).topology.graph)
        dist = cache.hop_distance_distribution()
        assert sum(dist.values()) == pytest.approx(1.0)
        assert min(dist) == 1


class TestEcmpTables:
    @pytest.mark.parametrize(
        "graph",
        [
            jellyfish(num_switches=16, network_ports=5, servers_per_switch=2, seed=3).graph,
            fattree(4).topology.graph,
            disconnected_graph(),
        ],
    )
    def test_identical_to_reference(self, graph):
        cache = PathCache(graph)
        tables = cache.ecmp_tables()
        for dst in graph.nodes():
            assert tables[dst] == ecmp_next_hops(graph, dst)

    def test_tables_cached_and_shared_by_reference(self):
        cache = PathCache(fattree(4).topology.graph)
        assert cache.ecmp_tables() is cache.ecmp_tables()


class TestKShortestPaths:
    def test_matches_reference_yen(self):
        g = jellyfish(num_switches=12, network_ports=4, servers_per_switch=2, seed=2).graph
        cache = PathCache(g)
        for src, dst in [(0, 5), (3, 11), (7, 1)]:
            assert cache.k_shortest_paths(src, dst, 4) == k_shortest_paths(
                g, src, dst, 4
            )

    def test_smaller_k_served_from_memo(self):
        g = fattree(4).topology.graph
        cache = PathCache(g)
        full = cache.k_shortest_paths(0, 3, 6)
        # Prefix requests must not recompute and must be consistent.
        assert cache.k_shortest_paths(0, 3, 2) == full[:2]
        assert (0, 3) in cache._ksp
        assert cache._ksp[(0, 3)][0] == 6

    def test_exhausted_pair_serves_any_k(self):
        g = nx.path_graph(4)  # exactly one simple path per pair
        cache = PathCache(g)
        assert cache.k_shortest_paths(0, 3, 5) == [[0, 1, 2, 3]]
        # 1 < 5 paths found => exhausted; a larger k is served from memo.
        assert cache.k_shortest_paths(0, 3, 50) == [[0, 1, 2, 3]]

    def test_returns_copies(self):
        cache = PathCache(nx.path_graph(3))
        first = cache.k_shortest_paths(0, 2, 1)
        first[0].append(99)
        assert cache.k_shortest_paths(0, 2, 1) == [[0, 1, 2]]


class TestContentHash:
    def test_capacity_independent(self):
        a = nx.cycle_graph(6)
        b = nx.cycle_graph(6)
        nx.set_edge_attributes(b, 7.5, "capacity")
        assert topology_content_hash(a) == topology_content_hash(b)

    def test_structure_sensitive(self):
        a = nx.cycle_graph(6)
        b = nx.path_graph(6)
        assert topology_content_hash(a) != topology_content_hash(b)

    def test_accepts_topology_and_graph(self):
        topo = fattree(4).topology
        assert topology_content_hash(topo) == topology_content_hash(topo.graph)

    def test_rejects_non_graphs(self):
        with pytest.raises(TypeError):
            topology_content_hash(42)


class TestSharedRegistry:
    def test_equal_structure_shares_one_cache(self):
        t1 = jellyfish(num_switches=10, network_ports=3, servers_per_switch=2, seed=4)
        t2 = jellyfish(num_switches=10, network_ports=3, servers_per_switch=2, seed=4)
        assert shared_path_cache(t1) is shared_path_cache(t2.graph)

    def test_distinct_structure_distinct_cache(self):
        c1 = shared_path_cache(nx.cycle_graph(6))
        c2 = shared_path_cache(nx.path_graph(6))
        assert c1 is not c2

    def test_lru_bound(self):
        for n in range(3, 3 + _REGISTRY_MAX + 5):
            shared_path_cache(nx.cycle_graph(n))
        assert len(_REGISTRY) == _REGISTRY_MAX

    def test_clear(self):
        shared_path_cache(nx.cycle_graph(5))
        assert clear_shared_caches() >= 1
        assert len(_REGISTRY) == 0


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        g = jellyfish(num_switches=10, network_ports=3, servers_per_switch=2, seed=6).graph
        first = PathCache(g, persist_dir=str(tmp_path))
        d1 = first.distances().copy()
        first.k_shortest_paths(0, 7, 3)
        first.save()

        second = PathCache(g, persist_dir=str(tmp_path))
        # Distance matrix loaded from disk (no recompute needed).
        assert second._dist is not None
        np.testing.assert_array_equal(second.distances(), d1)
        assert (0, 7) in second._ksp
        assert second.k_shortest_paths(0, 7, 3) == first.k_shortest_paths(0, 7, 3)

    def test_corrupt_files_tolerated(self, tmp_path):
        g = nx.cycle_graph(8)
        probe = PathCache(g, persist_dir=str(tmp_path))
        (tmp_path / probe._dist_path().split("/")[-1]).write_bytes(b"not npy")
        (tmp_path / probe._ksp_path().split("/")[-1]).write_text("not json")
        cache = PathCache(g, persist_dir=str(tmp_path))
        assert cache.distances().shape == (8, 8)

    def test_stale_shape_rejected(self, tmp_path):
        small = nx.cycle_graph(4)
        cache = PathCache(small, persist_dir=str(tmp_path))
        cache.distances()
        # Force a wrong-shape file under the same name.
        import io

        import numpy as np_

        from repro.ioutils import atomic_write_bytes

        buf = io.BytesIO()
        np_.save(buf, np_.zeros((2, 2)))
        atomic_write_bytes(cache._dist_path(), buf.getvalue())
        fresh = PathCache(small, persist_dir=str(tmp_path))
        assert fresh._dist is None  # rejected, recomputed on demand
        assert fresh.distances().shape == (4, 4)


class TestRoutingIntegration:
    def test_routing_policy_shares_tables(self):
        from repro.sim.routing import EcmpRouting, VlbRouting

        g = jellyfish(num_switches=12, network_ports=4, servers_per_switch=2, seed=9).graph
        a = EcmpRouting(g)
        b = VlbRouting(g, seed=1)
        assert a._tables is b._tables  # one table set per topology

    def test_explicit_cache_accepted(self):
        from repro.sim.routing import KspRouting

        g = fattree(4).topology.graph
        cache = PathCache(g)
        pol = KspRouting(g, k=3, path_cache=cache)
        pol._path_set(0, 3)
        assert (0, 3) in cache._ksp
